//! Warm-standby controller redundancy: configuration, replica state,
//! and the deterministic heartbeat/failure-detector bookkeeping.
//!
//! The paper's coordinated architecture hangs the whole stack off a
//! single Group Manager; PR 2/PR 4 made outages *survivable* (lease
//! expiry reverts children to static caps) but not *transparent* — the
//! efficiency claims are forfeited for the outage window. This module
//! adds the data model for transparent failover: each GM and EM may be
//! paired with a **warm standby replica** that shadows the primary's
//! state via sequence-numbered state-sync messages on the control-plane
//! bus, and a **tick-counted failure detector** (no wall clock anywhere)
//! that promotes the standby after a configurable number of missed
//! heartbeats. Promotion bumps an epoch/term number; a returning primary
//! observes the higher term, is fenced (its stale claim is rejected via
//! the bus's `StaleRejected` path), and re-integrates as the new standby.
//!
//! Everything here is plain deterministic state: the failure detector is
//! driven by the runner's sequential global phase, so results stay
//! bit-identical at every worker-thread count, and every field is
//! serializable for the runner's checkpoint (`RunnerSnapshot` v4).

use serde::{Deserialize, Serialize};

/// Standby-replica configuration for the budget controllers. The default
/// is fully disabled (no replicas, no heartbeats, no sync traffic),
/// which reproduces pre-redundancy runs bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundancyConfig {
    /// Pair the Group Manager with a warm standby.
    pub gm_standby: bool,
    /// Pair every Enclosure Manager with a warm standby.
    pub em_standby: bool,
    /// Failure-detector heartbeat period in ticks (the detector checks
    /// liveness every `heartbeat_interval_ticks` ticks).
    pub heartbeat_interval_ticks: u64,
    /// Consecutive missed heartbeats before the standby is promoted.
    pub miss_threshold: u32,
}

impl Default for RedundancyConfig {
    fn default() -> Self {
        Self {
            gm_standby: false,
            em_standby: false,
            heartbeat_interval_ticks: 5,
            miss_threshold: 3,
        }
    }
}

impl RedundancyConfig {
    /// Standbys everywhere (GM and every EM) with default detector
    /// timing — the `npsctl run --standby` configuration.
    pub fn all_standbys() -> Self {
        Self {
            gm_standby: true,
            em_standby: true,
            ..Self::default()
        }
    }

    /// Whether any replica is configured at all.
    pub fn any_enabled(&self) -> bool {
        self.gm_standby || self.em_standby
    }

    /// Enables or disables the GM standby.
    pub fn with_gm_standby(mut self, on: bool) -> Self {
        self.gm_standby = on;
        self
    }

    /// Enables or disables the per-EM standbys.
    pub fn with_em_standby(mut self, on: bool) -> Self {
        self.em_standby = on;
        self
    }

    /// Sets the detector timing: heartbeat period and miss threshold.
    pub fn with_heartbeat(mut self, interval_ticks: u64, miss_threshold: u32) -> Self {
        self.heartbeat_interval_ticks = interval_ticks;
        self.miss_threshold = miss_threshold;
        self
    }

    /// Clamps degenerate detector timing (zero period or threshold) up
    /// to the minimum meaningful values.
    pub fn sanitized(mut self) -> Self {
        self.heartbeat_interval_ticks = self.heartbeat_interval_ticks.max(1);
        self.miss_threshold = self.miss_threshold.max(1);
        self
    }
}

/// One state-sync message in flight on the bus: the bus itself carries
/// only the sequence number (and a representative watts value); the
/// shadowed controller state rides here, keyed by that sequence number,
/// until the bus delivers, supersedes, or exhausts the message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightSync {
    /// Bus sequence number of the sync message on the replica's link.
    pub seq: u64,
    /// Encoded controller state (grant/lease/policy words, bit-exact).
    pub payload: Vec<u64>,
}

/// The live state of one warm standby replica and its failure detector.
///
/// Term semantics: the pair starts at term 1 with the primary leading.
/// Every promotion increments the term, so a returning primary holding
/// term `n` finds the standby serving at term `n + 1` — its claim to
/// leadership is stale and is fenced. After fencing it re-integrates as
/// the new standby and the (possibly repeated) cycle can run again.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaState {
    /// Current leadership term (starts at 1; bumped on every promotion).
    pub term: u64,
    /// Consecutive missed heartbeats observed by the failure detector.
    pub missed: u32,
    /// Whether the standby currently leads (the primary is deposed).
    pub promoted: bool,
    /// The standby's shadow of the primary's controller state: the last
    /// sync payload the bus delivered (encoded grant/lease/policy words).
    pub shadow: Vec<u64>,
    /// Sync messages sent but not yet resolved by the bus.
    pub inflight: Vec<InFlightSync>,
}

impl ReplicaState {
    /// A fresh replica pair: term 1, primary leading, the standby warm
    /// with `shadow` (both sides boot from the same configuration, so
    /// the standby starts in sync).
    pub fn new(shadow: Vec<u64>) -> Self {
        Self {
            term: 1,
            missed: 0,
            promoted: false,
            shadow,
            inflight: Vec::new(),
        }
    }

    /// Records a sync message the primary just sent: `seq` is the bus
    /// sequence number, `payload` the encoded state it carries.
    pub fn record_sync(&mut self, seq: u64, payload: Vec<u64>) {
        self.inflight.push(InFlightSync { seq, payload });
    }

    /// The bus delivered the sync with sequence number `seq`: applies
    /// its payload to the shadow and drops every in-flight entry at or
    /// below `seq` (the receiver rejects those as stale anyway). Returns
    /// whether a payload was applied.
    pub fn deliver_sync(&mut self, seq: u64) -> bool {
        let mut applied = false;
        if let Some(entry) = self.inflight.iter().find(|e| e.seq == seq) {
            self.shadow = entry.payload.clone();
            applied = true;
        }
        self.inflight.retain(|e| e.seq > seq);
        applied
    }

    /// The bus dropped, superseded, or exhausted the sync with sequence
    /// number `seq`: forget its payload (the shadow keeps its last
    /// delivered state). Returns whether an entry was dropped.
    pub fn drop_sync(&mut self, seq: u64) -> bool {
        let before = self.inflight.len();
        self.inflight.retain(|e| e.seq != seq);
        before != self.inflight.len()
    }
}

/// Exact counts of redundancy-protocol activity over a run, in the style
/// of `FaultStats`: incremented by the runner alongside the matching
/// telemetry events, so they are exact even without a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RedundancyStats {
    /// Heartbeat liveness checks the failure detector performed.
    pub heartbeats: u64,
    /// Heartbeats a (not-yet-deposed) primary failed to answer.
    pub missed_heartbeats: u64,
    /// Standby promotions (term bumps).
    pub promotions: u64,
    /// Returning primaries fenced on a stale term and re-integrated as
    /// the new standby.
    pub fenced: u64,
    /// State-sync messages the primaries sent.
    pub syncs_sent: u64,
    /// State-sync payloads the standbys applied to their shadows.
    pub syncs_applied: u64,
    /// State-sync messages lost for good (bus drop or retry exhaustion).
    pub syncs_dropped: u64,
    /// State-sync retransmissions by the bus.
    pub sync_retries: u64,
}

impl RedundancyStats {
    /// True when no redundancy activity happened at all (in particular,
    /// always true when no replica is configured).
    pub fn is_quiet(&self) -> bool {
        *self == RedundancyStats::default()
    }

    /// Element-wise sum, for aggregating across runs.
    pub fn merge(&mut self, other: &RedundancyStats) {
        self.heartbeats += other.heartbeats;
        self.missed_heartbeats += other.missed_heartbeats;
        self.promotions += other.promotions;
        self.fenced += other.fenced;
        self.syncs_sent += other.syncs_sent;
        self.syncs_applied += other.syncs_applied;
        self.syncs_dropped += other.syncs_dropped;
        self.sync_retries += other.sync_retries;
    }
}

impl std::fmt::Display for RedundancyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "heartbeats {} (missed {}), promotions {}, fenced {}, \
             syncs sent {} / applied {} / dropped {} / retried {}",
            self.heartbeats,
            self.missed_heartbeats,
            self.promotions,
            self.fenced,
            self.syncs_sent,
            self.syncs_applied,
            self.syncs_dropped,
            self.sync_retries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled_and_sane() {
        let cfg = RedundancyConfig::default();
        assert!(!cfg.any_enabled());
        assert!(cfg.heartbeat_interval_ticks >= 1);
        assert!(cfg.miss_threshold >= 1);
    }

    #[test]
    fn sanitized_clamps_degenerate_timing() {
        let cfg = RedundancyConfig::all_standbys()
            .with_heartbeat(0, 0)
            .sanitized();
        assert_eq!(cfg.heartbeat_interval_ticks, 1);
        assert_eq!(cfg.miss_threshold, 1);
        assert!(cfg.any_enabled());
    }

    #[test]
    fn deliver_applies_payload_and_prunes_older_inflight() {
        let mut r = ReplicaState::new(vec![1, 2, 3]);
        r.record_sync(5, vec![10]);
        r.record_sync(6, vec![20]);
        r.record_sync(7, vec![30]);
        assert!(r.deliver_sync(6));
        assert_eq!(r.shadow, vec![20]);
        // 5 was pruned as stale, 7 is still pending.
        assert_eq!(r.inflight.len(), 1);
        assert_eq!(r.inflight[0].seq, 7);
        // Delivering an unknown (already-pruned) seq applies nothing but
        // still prunes at-or-below entries.
        assert!(!r.deliver_sync(5));
        assert_eq!(r.shadow, vec![20]);
    }

    #[test]
    fn drop_forgets_only_the_named_entry() {
        let mut r = ReplicaState::new(Vec::new());
        r.record_sync(1, vec![10]);
        r.record_sync(2, vec![20]);
        assert!(r.drop_sync(1));
        assert!(!r.drop_sync(1));
        assert_eq!(r.inflight.len(), 1);
        assert!(r.shadow.is_empty());
    }

    #[test]
    fn stats_merge_and_quietness() {
        let mut a = RedundancyStats {
            heartbeats: 3,
            promotions: 1,
            ..RedundancyStats::default()
        };
        assert!(!a.is_quiet());
        let b = RedundancyStats {
            heartbeats: 2,
            fenced: 1,
            ..RedundancyStats::default()
        };
        a.merge(&b);
        assert_eq!(a.heartbeats, 5);
        assert_eq!(a.fenced, 1);
        assert!(RedundancyStats::default().is_quiet());
    }

    #[test]
    fn replica_state_roundtrips_through_json() {
        let mut r = ReplicaState::new(vec![f64::INFINITY.to_bits(), 7]);
        r.record_sync(3, vec![42]);
        r.term = 4;
        r.promoted = true;
        let json = serde_json::to_string(&r).unwrap();
        let back: ReplicaState = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = RedundancyConfig::all_standbys().with_heartbeat(7, 2);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RedundancyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}

//! Fixed-shape pairwise (tree) reductions with a combine order that
//! depends **only on the element count** — never on thread count or
//! shard boundaries — so sequential and pool-parallel drivers produce
//! the same bits by construction.
//!
//! # Why floating-point reductions need a fixed shape
//!
//! `f64` addition is not associative: `(a + b) + c` and `a + (b + c)`
//! can round differently, so a sum's bits depend on the order terms are
//! combined. A naive parallel sum folds each shard locally and then
//! combines shard partials, which makes the result a function of *how
//! many shards there were* — breaking this repo's
//! bit-identical-at-any-thread-count contract. The standard fix (used
//! by deterministic large-scale training stacks) is to fix the
//! reduction *tree* up front as a pure function of the element count
//! `n` and make every execution strategy walk that same tree.
//!
//! # The shape
//!
//! Elements `0..n` are cut into fixed **leaf blocks** of
//! [`LEAF_WIDTH`] consecutive elements (the last block may be short).
//! Each leaf is folded sequentially left-to-right starting from the
//! identity — exactly the shape of `iter().fold(identity, combine)` —
//! so inputs no longer than one leaf reduce *bit-identically to the
//! plain left-fold* they replace. Leaf partials are then combined by
//! balanced pairwise rounds: adjacent partials pair up
//! (`p[i] = combine(p[2i], p[2i+1])`), an odd trailing partial is
//! carried to the next round **unchanged** (never combined with the
//! identity, which could perturb bits, e.g. `-0.0 + 0.0 == +0.0`),
//! and rounds repeat until one value remains. Both the block
//! boundaries and the pairing pattern are pure functions of `n`.
//!
//! # The two drivers
//!
//! [`tree_reduce`] walks the tree on the calling thread. The
//! pool-parallel driver ([`tree_reduce_pool`]) farms the *leaf
//! partials* out to a [`WorkerPool`] (one work item per leaf, so
//! work-stealing can balance them freely) and then combines the
//! collected partials through the identical pairwise rounds on the
//! calling thread. Since each leaf partial is computed by the same
//! per-leaf sequential fold and the combine sequence is shared code,
//! the two drivers agree bit-for-bit at any thread count — there is
//! nothing to test except that the leaves were all filled in, which
//! the pool's barrier guarantees.

use crate::par::WorkerPool;
use std::sync::Mutex;

/// Elements folded sequentially per leaf block. 32 keeps the
/// per-element cost of tree bookkeeping negligible while leaving
/// enough leaves for a pool to balance (a 1536-server fleet has 48),
/// and it means any reduction over at most 32 elements is
/// bit-identical to the plain left-fold it replaced.
pub const LEAF_WIDTH: usize = 32;

/// Number of leaf blocks the fixed shape assigns to `n` elements.
pub fn num_leaves(n: usize) -> usize {
    n.div_ceil(LEAF_WIDTH)
}

/// Folds leaf block `k` of `n` elements: a plain sequential
/// left-to-right fold of `map(i)` for `i` in the block, starting from
/// `identity`. Shared verbatim by both drivers — this is what makes
/// them bit-identical by construction.
fn leaf_partial<T, M, C>(k: usize, n: usize, identity: T, map: &M, combine: &C) -> T
where
    T: Copy,
    M: Fn(usize) -> T + ?Sized,
    C: Fn(T, T) -> T + ?Sized,
{
    let start = k * LEAF_WIDTH;
    let end = n.min(start + LEAF_WIDTH);
    let mut acc = identity;
    for i in start..end {
        acc = combine(acc, map(i));
    }
    acc
}

/// Combines leaf partials by balanced pairwise rounds. Adjacent
/// partials pair left-to-right; an odd trailing partial is carried
/// unchanged. The sequence of combines is a pure function of
/// `parts.len()` — shared verbatim by both drivers.
fn combine_partials<T, C>(mut parts: Vec<T>, identity: T, combine: &C) -> T
where
    T: Copy,
    C: Fn(T, T) -> T + ?Sized,
{
    if parts.is_empty() {
        return identity;
    }
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        for pair in parts.chunks(2) {
            next.push(if pair.len() == 2 {
                combine(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        parts = next;
    }
    parts[0]
}

/// Sequential driver: reduces `map(0) .. map(n-1)` through the fixed
/// tree on the calling thread. `combine` must not be assumed
/// associative — the whole point is that it is called in one specific
/// order — but it must be a pure function of its operands.
pub fn tree_reduce<T, M, C>(n: usize, identity: T, map: M, combine: C) -> T
where
    T: Copy,
    M: Fn(usize) -> T,
    C: Fn(T, T) -> T,
{
    let parts: Vec<T> = (0..num_leaves(n))
        .map(|k| leaf_partial(k, n, identity, &map, &combine))
        .collect();
    combine_partials(parts, identity, &combine)
}

/// Pool-parallel driver: leaf partials are computed by the pool (one
/// stealable work item per leaf), then combined through the identical
/// pairwise rounds on the calling thread. Bit-identical to
/// [`tree_reduce`] with the same `n`/`map`/`combine` at any thread
/// count, because the per-leaf fold and the combine sequence are the
/// same code.
pub fn tree_reduce_pool<T, M, C>(pool: &WorkerPool, n: usize, identity: T, map: M, combine: C) -> T
where
    T: Copy + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let leaves = num_leaves(n);
    let cells: Vec<Mutex<T>> = (0..leaves).map(|_| Mutex::new(identity)).collect();
    pool.execute(leaves, &|k| {
        let partial = leaf_partial(k, n, identity, &map, &combine);
        *cells[k].lock().expect("reduce leaf cell poisoned") = partial;
    });
    let parts: Vec<T> = cells
        .into_iter()
        .map(|c| c.into_inner().expect("reduce leaf cell poisoned"))
        .collect();
    combine_partials(parts, identity, &combine)
}

/// Fixed-shape sum of `f(0) .. f(n-1)` (identity `0.0`, combine `+`).
pub fn tree_sum_by<F: Fn(usize) -> f64>(n: usize, f: F) -> f64 {
    tree_reduce(n, 0.0, f, |a, b| a + b)
}

/// Fixed-shape sum of a slice.
pub fn tree_sum(xs: &[f64]) -> f64 {
    tree_sum_by(xs.len(), |i| xs[i])
}

/// Fixed-shape maximum of `f(0) .. f(n-1)` with the left-fold identity
/// `0.0` (matching the `fold(0.0, f64::max)` idiom it replaces:
/// negative inputs clamp to zero and NaNs are ignored by `f64::max`).
pub fn tree_max_by<F: Fn(usize) -> f64>(n: usize, f: F) -> f64 {
    tree_reduce(n, 0.0, f, f64::max)
}

/// Fixed-shape maximum of a slice (identity `0.0`, combine `f64::max`).
pub fn tree_max(xs: &[f64]) -> f64 {
    tree_max_by(xs.len(), |i| xs[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_reduce_to_identity_and_element() {
        assert_eq!(tree_sum(&[]), 0.0);
        assert_eq!(tree_sum(&[2.5]), 0.0 + 2.5);
        assert_eq!(tree_max(&[]), 0.0);
    }

    #[test]
    fn at_most_one_leaf_matches_the_plain_left_fold_bitwise() {
        // The load-bearing compatibility property: call sites whose
        // inputs never exceed LEAF_WIDTH keep their exact old bits.
        for n in 0..=LEAF_WIDTH {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.1) * 1.7e-3).collect();
            let reference = xs.iter().fold(0.0f64, |a, b| a + b);
            assert_eq!(tree_sum(&xs).to_bits(), reference.to_bits());
            let ref_max = xs.iter().cloned().fold(0.0f64, f64::max);
            assert_eq!(tree_max(&xs).to_bits(), ref_max.to_bits());
        }
    }

    #[test]
    fn shape_depends_only_on_count() {
        // Reduce index ranges with a combine that logs every merge as
        // (left_len, right_len). Equal-length inputs must produce the
        // identical log regardless of element values.
        fn shape(n: usize) -> Vec<(usize, usize)> {
            let log = Mutex::new(Vec::new());
            tree_reduce(
                n,
                0usize,
                |_| 1usize,
                |a, b| {
                    if a > 0 && b > 0 {
                        log.lock().unwrap().push((a, b));
                    }
                    a + b
                },
            );
            log.into_inner().unwrap()
        }
        for n in [0, 1, 31, 32, 33, 64, 65, 97, 1536] {
            assert_eq!(shape(n), shape(n), "shape must be deterministic for n={n}");
        }
        // 97 elements = 4 leaves (32, 32, 32, 1): within-leaf merges
        // then two pairwise rounds; the odd carry never merges with
        // the identity.
        let s = shape(97);
        assert!(s.contains(&(32, 32)) && s.contains(&(64, 33)), "{s:?}");
    }

    #[test]
    fn pool_driver_is_bit_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..777)
            .map(|i| ((i * 2654435761u64 as usize) as f64).sin() * 1e8)
            .collect();
        let seq = tree_sum(&xs);
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let par = tree_reduce_pool(&pool, xs.len(), 0.0, |i| xs[i], |a, b| a + b);
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn struct_reductions_combine_componentwise() {
        let pool = WorkerPool::new(3);
        let n = 200;
        let seq = tree_reduce(
            n,
            (0.0f64, 0u64),
            |i| (i as f64 * 0.25, u64::from(i % 3 == 0)),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        let par = tree_reduce_pool(
            &pool,
            n,
            (0.0f64, 0u64),
            |i| (i as f64 * 0.25, u64::from(i % 3 == 0)),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        assert_eq!(seq.0.to_bits(), par.0.to_bits());
        assert_eq!(seq.1, par.1);
        assert_eq!(seq.1, (0..n as u64).filter(|i| i % 3 == 0).count() as u64);
    }
}

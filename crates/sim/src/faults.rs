//! Deterministic fault injection for resilience experiments.
//!
//! The paper's federated architecture (§3) claims that individual
//! controllers can fail independently without collapsing the stack. This
//! module provides the machinery to *test* that claim: a seeded
//! [`FaultPlan`] describing sensor faults (Gaussian noise, stuck
//! readings, dropped samples), actuator faults (stuck P-states, lost
//! budget messages on the GM→EM→SM channel), and controller outages
//! (an SM/EM/GM offline for a tick window), plus the [`FaultInjector`]
//! runtime that plays the plan back deterministically.
//!
//! The injector is pure configuration-plus-PRNG: two runners built from
//! the same plan observe the same fault sequence, so faulty runs stay as
//! reproducible as clean ones. A disabled plan (all rates zero, no
//! outages) injects nothing and draws no random numbers, which keeps
//! fault-free runs bit-identical to runs of builds that predate this
//! module.

use rand::rngs::{CounterRng, StdRng};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// A sensor channel at the controller ingestion boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorChannel {
    /// Per-server window-average power (the SM's input).
    ServerPower,
    /// Per-server window-average utilization (the EC's input).
    ServerUtilization,
    /// Per-enclosure window-average power (the EM's input).
    EnclosurePower,
    /// Per-child window-average power at the group level (the GM's input).
    GroupChildPower,
}

/// A controller layer that can suffer an outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerLayer {
    /// A server manager.
    Sm,
    /// An enclosure manager.
    Em,
    /// The group manager.
    Gm,
}

impl ControllerLayer {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ControllerLayer::Sm => "SM",
            ControllerLayer::Em => "EM",
            ControllerLayer::Gm => "GM",
        }
    }
}

/// Sensor-fault rates, applied per reading at the ingestion boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SensorFaultSpec {
    /// Standard deviation of multiplicative Gaussian noise, as a fraction
    /// of the true reading (0 = no noise).
    pub noise_std: f64,
    /// Per-reading probability that the sensor freezes at its current
    /// value for [`SensorFaultSpec::stuck_ticks`] ticks.
    pub stuck_prob: f64,
    /// How long a stuck sensor holds its frozen value, in ticks.
    pub stuck_ticks: u64,
    /// Per-reading probability the sample is lost entirely (the consumer
    /// must degrade, e.g. hold its last good reading).
    pub drop_prob: f64,
}

impl SensorFaultSpec {
    /// Whether any sensor fault can fire.
    pub fn is_enabled(&self) -> bool {
        self.noise_std > 0.0
            || (self.stuck_prob > 0.0 && self.stuck_ticks > 0)
            || self.drop_prob > 0.0
    }

    /// Clamps rates into `[0, 1]` and maps non-finite values to 0.
    pub fn sanitized(self) -> Self {
        let clean = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            noise_std: if self.noise_std.is_finite() {
                self.noise_std.max(0.0)
            } else {
                0.0
            },
            stuck_prob: clean(self.stuck_prob),
            stuck_ticks: self.stuck_ticks,
            drop_prob: clean(self.drop_prob),
        }
    }
}

/// Actuator-fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ActuatorFaultSpec {
    /// Per-write probability that a server's P-state actuator jams,
    /// discarding writes for [`ActuatorFaultSpec::stuck_ticks`] ticks.
    pub stuck_prob: f64,
    /// How long a jammed actuator discards writes, in ticks.
    pub stuck_ticks: u64,
    /// Per-message probability that a budget grant (GM→EM or EM→SM) is
    /// lost; the child then holds its last granted budget.
    pub message_loss_prob: f64,
}

impl ActuatorFaultSpec {
    /// Whether any actuator fault can fire.
    pub fn is_enabled(&self) -> bool {
        (self.stuck_prob > 0.0 && self.stuck_ticks > 0) || self.message_loss_prob > 0.0
    }

    /// Clamps rates into `[0, 1]` and maps non-finite values to 0.
    pub fn sanitized(self) -> Self {
        let clean = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            stuck_prob: clean(self.stuck_prob),
            stuck_ticks: self.stuck_ticks,
            message_loss_prob: clean(self.message_loss_prob),
        }
    }
}

/// A controller offline window `[start, end)` in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// The layer that goes offline.
    pub layer: ControllerLayer,
    /// Which instance (server index for SMs, enclosure index for EMs;
    /// ignored for the GM). `None` takes the whole layer down.
    pub index: Option<usize>,
    /// First tick of the outage (inclusive).
    pub start: u64,
    /// First tick after the outage (exclusive).
    pub end: u64,
}

impl OutageWindow {
    /// Whether instance `index` of `layer` is down at `tick`.
    pub fn covers(&self, layer: ControllerLayer, index: usize, tick: u64) -> bool {
        self.layer == layer
            && self.index.unwrap_or(index) == index
            && tick >= self.start
            && tick < self.end
    }
}

/// A complete, seeded fault scenario. The default plan is fully disabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// PRNG seed; identical plans produce identical fault sequences.
    pub seed: u64,
    /// Sensor-fault rates.
    pub sensor: SensorFaultSpec,
    /// Actuator-fault rates.
    pub actuator: ActuatorFaultSpec,
    /// Scheduled controller outages.
    pub outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// A plan injecting nothing (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this plan can inject anything at all.
    pub fn is_enabled(&self) -> bool {
        self.sensor.is_enabled() || self.actuator.is_enabled() || !self.outages.is_empty()
    }

    /// Returns the plan with all rates clamped into valid ranges and
    /// degenerate (empty) outage windows removed.
    pub fn sanitized(mut self) -> Self {
        self.sensor = self.sensor.sanitized();
        self.actuator = self.actuator.sanitized();
        self.outages.retain(|w| w.end > w.start);
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables multiplicative Gaussian sensor noise with the given
    /// standard deviation (fraction of the true reading).
    pub fn with_sensor_noise(mut self, noise_std: f64) -> Self {
        self.sensor.noise_std = noise_std;
        self
    }

    /// Enables stuck sensors: with probability `prob` per reading, the
    /// sensor freezes for `ticks` ticks.
    pub fn with_stuck_sensors(mut self, prob: f64, ticks: u64) -> Self {
        self.sensor.stuck_prob = prob;
        self.sensor.stuck_ticks = ticks;
        self
    }

    /// Enables dropped samples with the given per-reading probability.
    pub fn with_dropped_samples(mut self, prob: f64) -> Self {
        self.sensor.drop_prob = prob;
        self
    }

    /// Enables stuck P-state actuators: with probability `prob` per
    /// write, the actuator jams for `ticks` ticks.
    pub fn with_stuck_actuators(mut self, prob: f64, ticks: u64) -> Self {
        self.actuator.stuck_prob = prob;
        self.actuator.stuck_ticks = ticks;
        self
    }

    /// Enables budget-message loss (GM→EM→SM) at the given probability.
    pub fn with_message_loss(mut self, prob: f64) -> Self {
        self.actuator.message_loss_prob = prob;
        self
    }

    /// Schedules an outage of `layer` instance `index` (or the whole
    /// layer with `None`) over `[start, end)`.
    pub fn with_outage(
        mut self,
        layer: ControllerLayer,
        index: Option<usize>,
        start: u64,
        end: u64,
    ) -> Self {
        self.outages.push(OutageWindow {
            layer,
            index,
            start,
            end,
        });
        self
    }
}

/// One sensor reading after fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reading {
    /// The reading passed through untouched.
    Clean(f64),
    /// The reading was perturbed by Gaussian noise.
    Noisy(f64),
    /// The sensor is frozen at an old value.
    Stuck(f64),
    /// The sample was lost; the consumer must degrade.
    Dropped,
}

impl Reading {
    /// The delivered value, if any.
    pub fn value(self) -> Option<f64> {
        match self {
            Reading::Clean(v) | Reading::Noisy(v) | Reading::Stuck(v) => Some(v),
            Reading::Dropped => None,
        }
    }
}

/// Replays a [`FaultPlan`] deterministically against a running system.
///
/// One injector serves one run; the consumer (the experiment runner)
/// routes every controller sensor reading through [`FaultInjector::sense`],
/// every P-state write through [`FaultInjector::pstate_write_blocked`],
/// every budget grant through [`FaultInjector::budget_message_lost`], and
/// every controller epoch through [`FaultInjector::offline`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// Counter-based generator for the per-server actuator-jam stream.
    /// Unlike the shared sequential `rng`, every draw is a pure function
    /// of `(server, draw counter)`, so the conditional per-write draw is
    /// shardable across worker threads without perturbing any stream.
    actuator_rng: CounterRng,
    sensor_on: bool,
    actuator_on: bool,
    messages_on: bool,
    /// Frozen sensors: `(channel, index) → (held value, thaw tick)`.
    stuck_sensors: HashMap<(SensorChannel, usize), (f64, u64)>,
    /// Jammed actuators: per server, first tick writes work again.
    stuck_actuators: Vec<u64>,
    /// Per-server position in the counter-based actuator-jam stream.
    actuator_ctr: Vec<u64>,
}

impl FaultInjector {
    /// Builds the injector for a fleet of `num_servers` servers.
    pub fn new(plan: &FaultPlan, num_servers: usize) -> Self {
        let plan = plan.clone().sanitized();
        Self {
            rng: StdRng::seed_from_u64(plan.seed ^ 0x6e70_735f_6661_756c),
            actuator_rng: CounterRng::new(plan.seed ^ 0x6e70_735f_6163_7475),
            sensor_on: plan.sensor.is_enabled(),
            actuator_on: plan.actuator.stuck_prob > 0.0 && plan.actuator.stuck_ticks > 0,
            messages_on: plan.actuator.message_loss_prob > 0.0,
            stuck_sensors: HashMap::new(),
            stuck_actuators: vec![0; num_servers],
            actuator_ctr: vec![0; num_servers],
            plan,
        }
    }

    /// Whether the plan can inject anything (a disabled injector draws no
    /// random numbers and perturbs nothing).
    pub fn enabled(&self) -> bool {
        self.plan.is_enabled()
    }

    /// The sanitized plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether sensor faults are live — i.e. whether [`FaultInjector::
    /// sense`] may consume RNG draws or mutate the stuck-sensor map. A
    /// parallel epoch pre-samples readings sequentially only when this
    /// is set; otherwise `sense` is pure (`Clean(value)`, zero draws)
    /// and workers can reconstruct it locally.
    pub fn sensors_active(&self) -> bool {
        self.sensor_on
    }

    /// Whether actuator jams are live. The jam draw comes from the
    /// counter-based per-server stream, so even when this is set the
    /// conditional draw is shardable (see [`FaultInjector::
    /// actuator_shards`]). When unset, every write proceeds (`false`,
    /// zero draws).
    pub fn actuators_active(&self) -> bool {
        self.actuator_on
    }

    /// Whether budget-message loss is live — i.e. whether
    /// [`FaultInjector::budget_message_lost`] may consume a draw from
    /// the shared sequential stream.
    pub fn messages_active(&self) -> bool {
        self.messages_on
    }

    /// Routes one sensor reading through the fault model.
    pub fn sense(
        &mut self,
        channel: SensorChannel,
        index: usize,
        tick: u64,
        value: f64,
    ) -> Reading {
        if !self.sensor_on {
            return Reading::Clean(value);
        }
        let key = (channel, index);
        if let Some(&(held, until)) = self.stuck_sensors.get(&key) {
            if tick < until {
                return Reading::Stuck(held);
            }
            self.stuck_sensors.remove(&key);
        }
        if self.plan.sensor.drop_prob > 0.0 && self.rng.gen_bool(self.plan.sensor.drop_prob) {
            return Reading::Dropped;
        }
        if self.plan.sensor.stuck_prob > 0.0
            && self.plan.sensor.stuck_ticks > 0
            && self.rng.gen_bool(self.plan.sensor.stuck_prob)
        {
            self.stuck_sensors
                .insert(key, (value, tick + self.plan.sensor.stuck_ticks));
            return Reading::Stuck(value);
        }
        if self.plan.sensor.noise_std > 0.0 {
            let noisy = value * (1.0 + self.plan.sensor.noise_std * self.gauss());
            return Reading::Noisy(noisy.max(0.0));
        }
        Reading::Clean(value)
    }

    /// Whether a P-state write to `server` at `tick` is discarded by a
    /// jammed actuator (and rolls new jams).
    ///
    /// The jam draw comes from server `server`'s private counter-based
    /// stream, **not** the shared sequential stream: the verdict depends
    /// only on how many draws that server has taken, never on what other
    /// servers or sensor channels did in between. That is what lets the
    /// conditional "draw only when a write happens" pattern run inside
    /// parallel shards while staying bit-identical to sequential order.
    pub fn pstate_write_blocked(&mut self, server: usize, tick: u64) -> bool {
        if !self.actuator_on || server >= self.stuck_actuators.len() {
            return false;
        }
        if tick < self.stuck_actuators[server] {
            return true;
        }
        let ctr = self.actuator_ctr[server];
        self.actuator_ctr[server] = ctr + 1;
        if self
            .actuator_rng
            .bool_at(server as u64, ctr, self.plan.actuator.stuck_prob)
        {
            self.stuck_actuators[server] = tick + self.plan.actuator.stuck_ticks;
            return true;
        }
        false
    }

    /// Carves the per-server actuator-jam state into disjoint shard
    /// views over `ranges` (which must be disjoint, ascending, and
    /// cover `0..num_servers`). Each shard answers
    /// [`ActuatorDrawShard::pstate_write_blocked`] for its own servers
    /// with exactly the verdicts the whole injector would produce —
    /// the draws live on per-server counter streams, so shard-local
    /// evaluation order cannot perturb anything.
    pub fn actuator_shards(&mut self, ranges: &[Range<usize>]) -> Vec<ActuatorDrawShard<'_>> {
        let mut shards = Vec::with_capacity(ranges.len());
        let mut thaw_rest: &mut [u64] = &mut self.stuck_actuators;
        let mut ctr_rest: &mut [u64] = &mut self.actuator_ctr;
        let mut consumed = 0usize;
        for range in ranges {
            debug_assert!(range.start >= consumed, "shard ranges must ascend");
            let (skip_t, rest_t) = thaw_rest.split_at_mut(range.start - consumed);
            let (thaw, rest_t) = rest_t.split_at_mut(range.len());
            let _ = skip_t;
            thaw_rest = rest_t;
            let (skip_c, rest_c) = ctr_rest.split_at_mut(range.start - consumed);
            let (ctr, rest_c) = rest_c.split_at_mut(range.len());
            let _ = skip_c;
            ctr_rest = rest_c;
            consumed = range.end;
            shards.push(ActuatorDrawShard {
                lo: range.start,
                active: self.actuator_on,
                prob: self.plan.actuator.stuck_prob,
                stuck_ticks: self.plan.actuator.stuck_ticks,
                rng: self.actuator_rng,
                thaw,
                ctr,
            });
        }
        shards
    }

    /// Whether one budget grant message is lost in transit.
    pub fn budget_message_lost(&mut self) -> bool {
        self.messages_on && self.rng.gen_bool(self.plan.actuator.message_loss_prob)
    }

    /// Whether instance `index` of `layer` is offline at `tick`.
    pub fn offline(&self, layer: ControllerLayer, index: usize, tick: u64) -> bool {
        self.plan
            .outages
            .iter()
            .any(|w| w.covers(layer, index, tick))
    }

    /// One standard-normal draw (Box–Muller).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Captures the injector's dynamic state (PRNG position, frozen
    /// sensors, jammed actuators) for checkpointing. Held sensor values
    /// are bit-packed so the JSON roundtrip is exact; the stuck-sensor
    /// map is sorted so snapshots of equal states are byte-identical.
    pub fn snapshot(&self) -> InjectorSnapshot {
        let mut stuck_sensors: Vec<StuckSensorSnapshot> = self
            .stuck_sensors
            .iter()
            .map(|(&(channel, index), &(value, until))| StuckSensorSnapshot {
                channel,
                index,
                value_bits: value.to_bits(),
                until,
            })
            .collect();
        stuck_sensors.sort_by_key(|s| (s.channel as u8, s.index));
        InjectorSnapshot {
            rng: self.rng.state().to_vec(),
            stuck_sensors,
            stuck_actuators: self.stuck_actuators.clone(),
            actuator_ctr: self.actuator_ctr.clone(),
        }
    }

    /// Restores state captured by [`FaultInjector::snapshot`]. The
    /// injector must have been built from the same plan and fleet size.
    pub fn restore(&mut self, snap: &InjectorSnapshot) {
        let mut rng_state = [0u64; 4];
        for (slot, &word) in rng_state.iter_mut().zip(snap.rng.iter()) {
            *slot = word;
        }
        self.rng = StdRng::from_state(rng_state);
        self.stuck_sensors = snap
            .stuck_sensors
            .iter()
            .map(|s| {
                (
                    (s.channel, s.index),
                    (f64::from_bits(s.value_bits), s.until),
                )
            })
            .collect();
        self.stuck_actuators = snap.stuck_actuators.clone();
        self.actuator_ctr = snap.actuator_ctr.clone();
    }
}

/// A disjoint per-shard view of the actuator-jam state, produced by
/// [`FaultInjector::actuator_shards`]. Holds `&mut` slices of the
/// injector's thaw ticks and draw counters for one contiguous server
/// range, so worker threads can take the conditional jam draw locally.
#[derive(Debug)]
pub struct ActuatorDrawShard<'a> {
    lo: usize,
    active: bool,
    prob: f64,
    stuck_ticks: u64,
    rng: CounterRng,
    thaw: &'a mut [u64],
    ctr: &'a mut [u64],
}

impl ActuatorDrawShard<'_> {
    /// Shard-local replica of [`FaultInjector::pstate_write_blocked`]
    /// for `server` (a global index inside this shard's range).
    pub fn pstate_write_blocked(&mut self, server: usize, tick: u64) -> bool {
        if !self.active {
            return false;
        }
        let i = server - self.lo;
        if tick < self.thaw[i] {
            return true;
        }
        let ctr = self.ctr[i];
        self.ctr[i] = ctr + 1;
        if self.rng.bool_at(server as u64, ctr, self.prob) {
            self.thaw[i] = tick + self.stuck_ticks;
            return true;
        }
        false
    }
}

/// One frozen sensor in a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckSensorSnapshot {
    /// The frozen channel.
    pub channel: SensorChannel,
    /// Sensor index within the channel.
    pub index: usize,
    /// Held value, as IEEE-754 bits.
    pub value_bits: u64,
    /// First tick the sensor thaws.
    pub until: u64,
}

/// The fault injector's full dynamic state (checkpoint section).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorSnapshot {
    /// PRNG state words.
    pub rng: Vec<u64>,
    /// Frozen sensors, sorted by (channel, index).
    pub stuck_sensors: Vec<StuckSensorSnapshot>,
    /// Per-server actuator thaw ticks.
    pub stuck_actuators: Vec<u64>,
    /// Per-server positions in the counter-based actuator-jam stream.
    pub actuator_ctr: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan::disabled()
            .with_seed(7)
            .with_sensor_noise(0.1)
            .with_stuck_sensors(0.05, 10)
            .with_dropped_samples(0.05)
            .with_stuck_actuators(0.05, 10)
            .with_message_loss(0.2)
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        let mut inj = FaultInjector::new(&plan, 4);
        assert!(!inj.enabled());
        for t in 0..100 {
            assert_eq!(
                inj.sense(SensorChannel::ServerPower, 0, t, 42.0),
                Reading::Clean(42.0)
            );
            assert!(!inj.pstate_write_blocked(0, t));
            assert!(!inj.budget_message_lost());
            assert!(!inj.offline(ControllerLayer::Gm, 0, t));
        }
    }

    #[test]
    fn zero_rate_plan_counts_as_disabled() {
        // Nonzero seed and stuck_ticks but every probability zero: nothing
        // can fire, so the plan must behave exactly like `disabled()`.
        let plan = FaultPlan {
            seed: 99,
            sensor: SensorFaultSpec {
                stuck_ticks: 50,
                ..SensorFaultSpec::default()
            },
            actuator: ActuatorFaultSpec {
                stuck_ticks: 50,
                ..ActuatorFaultSpec::default()
            },
            outages: vec![],
        };
        assert!(!plan.is_enabled());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = noisy_plan();
        let mut a = FaultInjector::new(&plan, 8);
        let mut b = FaultInjector::new(&plan, 8);
        for t in 0..500 {
            let i = (t as usize) % 8;
            assert_eq!(
                a.sense(SensorChannel::ServerPower, i, t, 100.0),
                b.sense(SensorChannel::ServerPower, i, t, 100.0)
            );
            assert_eq!(a.pstate_write_blocked(i, t), b.pstate_write_blocked(i, t));
            assert_eq!(a.budget_message_lost(), b.budget_message_lost());
        }
    }

    #[test]
    fn stuck_sensor_holds_value_then_thaws() {
        let plan = FaultPlan::disabled()
            .with_seed(3)
            .with_stuck_sensors(1.0, 5);
        let mut inj = FaultInjector::new(&plan, 1);
        let first = inj.sense(SensorChannel::ServerUtilization, 0, 0, 0.8);
        assert_eq!(first, Reading::Stuck(0.8));
        // Later readings inside the window return the frozen value even as
        // the true reading moves.
        assert_eq!(
            inj.sense(SensorChannel::ServerUtilization, 0, 3, 0.1),
            Reading::Stuck(0.8)
        );
        // After the thaw tick the (always-firing) stuck fault re-freezes at
        // the *new* value — proof the old window expired.
        assert_eq!(
            inj.sense(SensorChannel::ServerUtilization, 0, 5, 0.2),
            Reading::Stuck(0.2)
        );
    }

    #[test]
    fn channels_do_not_share_stuck_state() {
        let plan = FaultPlan::disabled()
            .with_seed(3)
            .with_stuck_sensors(1.0, 100);
        let mut inj = FaultInjector::new(&plan, 2);
        assert_eq!(
            inj.sense(SensorChannel::ServerPower, 0, 0, 50.0),
            Reading::Stuck(50.0)
        );
        assert_eq!(
            inj.sense(SensorChannel::EnclosurePower, 0, 1, 200.0),
            Reading::Stuck(200.0)
        );
        assert_eq!(
            inj.sense(SensorChannel::ServerPower, 0, 2, 75.0),
            Reading::Stuck(50.0)
        );
    }

    #[test]
    fn jammed_actuator_blocks_for_its_window() {
        let plan = FaultPlan::disabled()
            .with_seed(1)
            .with_stuck_actuators(1.0, 4);
        let mut inj = FaultInjector::new(&plan, 2);
        assert!(inj.pstate_write_blocked(0, 10)); // jams until t=14
        assert!(inj.pstate_write_blocked(0, 13));
        // At t=14 the window expired, but stuck_prob=1 re-jams instantly;
        // the other server has its own independent state.
        assert!(inj.pstate_write_blocked(1, 10));
    }

    #[test]
    fn noise_perturbs_but_stays_nonnegative() {
        let plan = FaultPlan::disabled().with_seed(11).with_sensor_noise(2.0);
        let mut inj = FaultInjector::new(&plan, 1);
        let mut saw_change = false;
        for t in 0..200 {
            match inj.sense(SensorChannel::ServerPower, 0, t, 10.0) {
                Reading::Noisy(v) => {
                    assert!(v.is_finite() && v >= 0.0);
                    if (v - 10.0).abs() > 1e-9 {
                        saw_change = true;
                    }
                }
                other => panic!("expected noise, got {other:?}"),
            }
        }
        assert!(saw_change);
    }

    #[test]
    fn outage_windows_cover_layer_and_instance() {
        let plan = FaultPlan::disabled()
            .with_outage(ControllerLayer::Em, Some(2), 100, 200)
            .with_outage(ControllerLayer::Gm, None, 50, 60);
        let inj = FaultInjector::new(&plan, 4);
        assert!(inj.offline(ControllerLayer::Em, 2, 150));
        assert!(!inj.offline(ControllerLayer::Em, 1, 150));
        assert!(!inj.offline(ControllerLayer::Em, 2, 200));
        assert!(inj.offline(ControllerLayer::Gm, 0, 55));
        assert!(!inj.offline(ControllerLayer::Sm, 2, 150));
    }

    #[test]
    fn sanitize_clamps_rates_and_drops_empty_windows() {
        let plan = FaultPlan {
            seed: 0,
            sensor: SensorFaultSpec {
                noise_std: f64::NAN,
                stuck_prob: 7.0,
                stuck_ticks: 5,
                drop_prob: -3.0,
            },
            actuator: ActuatorFaultSpec {
                stuck_prob: f64::INFINITY,
                stuck_ticks: 5,
                message_loss_prob: 2.0,
            },
            outages: vec![OutageWindow {
                layer: ControllerLayer::Sm,
                index: None,
                start: 10,
                end: 10,
            }],
        }
        .sanitized();
        assert_eq!(plan.sensor.noise_std, 0.0);
        assert_eq!(plan.sensor.stuck_prob, 1.0);
        assert_eq!(plan.sensor.drop_prob, 0.0);
        assert_eq!(plan.actuator.stuck_prob, 0.0); // non-finite rejected, not clamped
        assert_eq!(plan.actuator.message_loss_prob, 1.0);
        assert!(plan.outages.is_empty());
    }

    #[test]
    fn injector_snapshot_resumes_fault_stream() {
        let plan = noisy_plan();
        let mut live = FaultInjector::new(&plan, 8);
        for t in 0..300 {
            let i = (t as usize) % 8;
            live.sense(SensorChannel::ServerPower, i, t, 100.0 + t as f64);
            live.pstate_write_blocked(i, t);
            live.budget_message_lost();
        }
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snap: InjectorSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = FaultInjector::new(&plan, 8);
        resumed.restore(&snap);
        for t in 300..600 {
            let i = (t as usize) % 8;
            assert_eq!(
                live.sense(SensorChannel::ServerPower, i, t, 50.0),
                resumed.sense(SensorChannel::ServerPower, i, t, 50.0)
            );
            assert_eq!(
                live.pstate_write_blocked(i, t),
                resumed.pstate_write_blocked(i, t)
            );
            assert_eq!(live.budget_message_lost(), resumed.budget_message_lost());
        }
    }

    #[test]
    fn actuator_draws_are_independent_of_the_shared_stream() {
        // The jam stream is counter-based per server: interleaving any
        // number of sensor/message draws must not change the verdicts.
        let plan = noisy_plan();
        let mut quiet = FaultInjector::new(&plan, 4);
        let mut busy = FaultInjector::new(&plan, 4);
        for t in 0..400 {
            let i = (t as usize) % 4;
            // `busy` burns shared-stream draws between actuator draws.
            busy.sense(SensorChannel::ServerPower, i, t, 80.0);
            busy.budget_message_lost();
            assert_eq!(
                quiet.pstate_write_blocked(i, t),
                busy.pstate_write_blocked(i, t),
                "jam verdict diverged at tick {t}"
            );
        }
    }

    #[test]
    fn actuator_shards_replay_the_whole_injector() {
        let plan = noisy_plan();
        let mut whole = FaultInjector::new(&plan, 10);
        let mut sharded = FaultInjector::new(&plan, 10);
        for t in 0..200 {
            let want: Vec<bool> = (0..10).map(|i| whole.pstate_write_blocked(i, t)).collect();
            let mut got = vec![false; 10];
            let mut shards = sharded.actuator_shards(&[0..3, 3..7, 7..10]);
            // Deliberately evaluate shards out of order: counter streams
            // make the order irrelevant.
            for shard in shards.iter_mut().rev() {
                for (i, slot) in got.iter_mut().enumerate() {
                    if (shard.lo..shard.lo + shard.thaw.len()).contains(&i) {
                        *slot = shard.pstate_write_blocked(i, t);
                    }
                }
            }
            assert_eq!(want, got, "shard verdicts diverged at tick {t}");
        }
        // And the underlying state (thaw ticks + counters) stayed in
        // lockstep, so the next sequential draw agrees too.
        assert_eq!(whole.snapshot(), sharded.snapshot());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = noisy_plan().with_outage(ControllerLayer::Em, Some(1), 5, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}

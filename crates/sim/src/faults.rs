//! Deterministic fault injection for resilience experiments.
//!
//! The paper's federated architecture (§3) claims that individual
//! controllers can fail independently without collapsing the stack. This
//! module provides the machinery to *test* that claim: a seeded
//! [`FaultPlan`] describing sensor faults (Gaussian noise, stuck
//! readings, dropped samples), actuator faults (stuck P-states, lost
//! budget messages on the GM→EM→SM channel), and controller outages
//! (an SM/EM/GM offline for a tick window), plus the [`FaultInjector`]
//! runtime that plays the plan back deterministically.
//!
//! The injector is pure configuration-plus-PRNG: two runners built from
//! the same plan observe the same fault sequence, so faulty runs stay as
//! reproducible as clean ones. A disabled plan (all rates zero, no
//! outages) injects nothing and draws no random numbers, which keeps
//! fault-free runs bit-identical to runs of builds that predate this
//! module.
//!
//! Sensor, actuator, and message-loss draws all live on **counter-based
//! streams**: a draw is a pure function of `(slot, draw counter)` where a
//! slot is a `(channel, index)` sensor, a server's P-state actuator, or a
//! grant link. The verdict for one slot depends only on how many draws
//! that slot has taken, never on what other slots did in between, which
//! is what lets the epoch shards of the parallel runner take the
//! conditional draws locally while staying bit-identical to sequential
//! order. No shared sequential stream remains: the EM epoch needs no
//! pre-pass of any kind.

use rand::rngs::CounterRng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A sensor channel at the controller ingestion boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorChannel {
    /// Per-server window-average power (the SM's input).
    ServerPower,
    /// Per-server window-average utilization (the EC's input).
    ServerUtilization,
    /// Per-enclosure window-average power (the EM's input).
    EnclosurePower,
    /// Per-child window-average power at the group level (the GM's input).
    GroupChildPower,
}

/// A controller layer that can suffer an outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerLayer {
    /// A server manager.
    Sm,
    /// An enclosure manager.
    Em,
    /// The group manager.
    Gm,
}

impl ControllerLayer {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ControllerLayer::Sm => "SM",
            ControllerLayer::Em => "EM",
            ControllerLayer::Gm => "GM",
        }
    }
}

/// Sensor-fault rates, applied per reading at the ingestion boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SensorFaultSpec {
    /// Standard deviation of multiplicative Gaussian noise, as a fraction
    /// of the true reading (0 = no noise).
    pub noise_std: f64,
    /// Per-reading probability that the sensor freezes at its current
    /// value for [`SensorFaultSpec::stuck_ticks`] ticks.
    pub stuck_prob: f64,
    /// How long a stuck sensor holds its frozen value, in ticks.
    pub stuck_ticks: u64,
    /// Per-reading probability the sample is lost entirely (the consumer
    /// must degrade, e.g. hold its last good reading).
    pub drop_prob: f64,
}

impl SensorFaultSpec {
    /// Whether any sensor fault can fire.
    pub fn is_enabled(&self) -> bool {
        self.noise_std > 0.0
            || (self.stuck_prob > 0.0 && self.stuck_ticks > 0)
            || self.drop_prob > 0.0
    }

    /// Clamps rates into `[0, 1]` and maps non-finite values to 0.
    pub fn sanitized(self) -> Self {
        let clean = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            noise_std: if self.noise_std.is_finite() {
                self.noise_std.max(0.0)
            } else {
                0.0
            },
            stuck_prob: clean(self.stuck_prob),
            stuck_ticks: self.stuck_ticks,
            drop_prob: clean(self.drop_prob),
        }
    }
}

/// Actuator-fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ActuatorFaultSpec {
    /// Per-write probability that a server's P-state actuator jams,
    /// discarding writes for [`ActuatorFaultSpec::stuck_ticks`] ticks.
    pub stuck_prob: f64,
    /// How long a jammed actuator discards writes, in ticks.
    pub stuck_ticks: u64,
    /// Per-message probability that a budget grant (GM→EM or EM→SM) is
    /// lost; the child then holds its last granted budget.
    pub message_loss_prob: f64,
}

impl ActuatorFaultSpec {
    /// Whether any actuator fault can fire.
    pub fn is_enabled(&self) -> bool {
        (self.stuck_prob > 0.0 && self.stuck_ticks > 0) || self.message_loss_prob > 0.0
    }

    /// Clamps rates into `[0, 1]` and maps non-finite values to 0.
    pub fn sanitized(self) -> Self {
        let clean = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            stuck_prob: clean(self.stuck_prob),
            stuck_ticks: self.stuck_ticks,
            message_loss_prob: clean(self.message_loss_prob),
        }
    }
}

/// A controller offline window `[start, end)` in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// The layer that goes offline.
    pub layer: ControllerLayer,
    /// Which instance (server index for SMs, enclosure index for EMs;
    /// ignored for the GM). `None` takes the whole layer down.
    pub index: Option<usize>,
    /// First tick of the outage (inclusive).
    pub start: u64,
    /// First tick after the outage (exclusive).
    pub end: u64,
}

impl OutageWindow {
    /// Whether instance `index` of `layer` is down at `tick`.
    pub fn covers(&self, layer: ControllerLayer, index: usize, tick: u64) -> bool {
        self.layer == layer
            && self.index.unwrap_or(index) == index
            && tick >= self.start
            && tick < self.end
    }
}

/// A complete, seeded fault scenario. The default plan is fully disabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// PRNG seed; identical plans produce identical fault sequences.
    pub seed: u64,
    /// Sensor-fault rates.
    pub sensor: SensorFaultSpec,
    /// Actuator-fault rates.
    pub actuator: ActuatorFaultSpec,
    /// Scheduled controller outages.
    pub outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// A plan injecting nothing (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this plan can inject anything at all.
    pub fn is_enabled(&self) -> bool {
        self.sensor.is_enabled() || self.actuator.is_enabled() || !self.outages.is_empty()
    }

    /// Returns the plan with all rates clamped into valid ranges and
    /// degenerate (empty) outage windows removed.
    pub fn sanitized(mut self) -> Self {
        self.sensor = self.sensor.sanitized();
        self.actuator = self.actuator.sanitized();
        self.outages.retain(|w| w.end > w.start);
        self
    }

    /// [`FaultPlan::sanitized`] plus outage-window canonicalization:
    /// overlapping or adjacent windows for the same `(layer, instance)`
    /// are merged into one contiguous window, sorted by layer, instance,
    /// then start tick. The covered tick set is unchanged (merging is a
    /// pure union), but violation accounting and the failure detector see
    /// one outage per incident instead of a fragmented schedule.
    pub fn normalized(mut self) -> Self {
        self = self.sanitized();
        // Whole-layer windows (`index: None`) sort apart from any indexed
        // window: they cover every instance, so merging them into (or out
        // of) a single instance's window would change the covered set.
        let key = |w: &OutageWindow| {
            let layer = match w.layer {
                ControllerLayer::Sm => 0u8,
                ControllerLayer::Em => 1,
                ControllerLayer::Gm => 2,
            };
            let (whole, idx) = match w.index {
                None => (0u8, 0usize),
                Some(i) => (1, i),
            };
            (layer, whole, idx, w.start, w.end)
        };
        self.outages.sort_by_key(key);
        let mut merged: Vec<OutageWindow> = Vec::with_capacity(self.outages.len());
        for w in self.outages.drain(..) {
            match merged.last_mut() {
                Some(prev)
                    if prev.layer == w.layer && prev.index == w.index && w.start <= prev.end =>
                {
                    prev.end = prev.end.max(w.end);
                }
                _ => merged.push(w),
            }
        }
        self.outages = merged;
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables multiplicative Gaussian sensor noise with the given
    /// standard deviation (fraction of the true reading).
    pub fn with_sensor_noise(mut self, noise_std: f64) -> Self {
        self.sensor.noise_std = noise_std;
        self
    }

    /// Enables stuck sensors: with probability `prob` per reading, the
    /// sensor freezes for `ticks` ticks.
    pub fn with_stuck_sensors(mut self, prob: f64, ticks: u64) -> Self {
        self.sensor.stuck_prob = prob;
        self.sensor.stuck_ticks = ticks;
        self
    }

    /// Enables dropped samples with the given per-reading probability.
    pub fn with_dropped_samples(mut self, prob: f64) -> Self {
        self.sensor.drop_prob = prob;
        self
    }

    /// Enables stuck P-state actuators: with probability `prob` per
    /// write, the actuator jams for `ticks` ticks.
    pub fn with_stuck_actuators(mut self, prob: f64, ticks: u64) -> Self {
        self.actuator.stuck_prob = prob;
        self.actuator.stuck_ticks = ticks;
        self
    }

    /// Enables budget-message loss (GM→EM→SM) at the given probability.
    pub fn with_message_loss(mut self, prob: f64) -> Self {
        self.actuator.message_loss_prob = prob;
        self
    }

    /// Schedules an outage of `layer` instance `index` (or the whole
    /// layer with `None`) over `[start, end)`.
    pub fn with_outage(
        mut self,
        layer: ControllerLayer,
        index: Option<usize>,
        start: u64,
        end: u64,
    ) -> Self {
        self.outages.push(OutageWindow {
            layer,
            index,
            start,
            end,
        });
        self
    }
}

/// One sensor reading after fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reading {
    /// The reading passed through untouched.
    Clean(f64),
    /// The reading was perturbed by Gaussian noise.
    Noisy(f64),
    /// The sensor is frozen at an old value.
    Stuck(f64),
    /// The sample was lost; the consumer must degrade.
    Dropped,
}

impl Reading {
    /// The delivered value, if any.
    pub fn value(self) -> Option<f64> {
        match self {
            Reading::Clean(v) | Reading::Noisy(v) | Reading::Stuck(v) => Some(v),
            Reading::Dropped => None,
        }
    }
}

/// Dense per-slot sensor-fault state, channels concatenated in fixed
/// order: `ServerPower` (n slots), `ServerUtilization` (n),
/// `EnclosurePower` (E), `GroupChildPower` (E + S standalone servers).
/// The slot index doubles as the CounterRng stream id, so every sensor
/// owns a private draw stream.
#[derive(Debug, Clone, PartialEq)]
struct SensorState {
    num_servers: usize,
    num_enclosures: usize,
    /// GM children: enclosures first, then standalone servers.
    num_children: usize,
    /// Per-slot position in the counter-based draw stream.
    ctr: Vec<u64>,
    /// Per-slot thaw tick; `0` means the sensor is not stuck (a stuck
    /// window always ends at `tick + stuck_ticks ≥ 1`).
    stuck_until: Vec<u64>,
    /// Per-slot held value while stuck (stale once thawed).
    stuck_val: Vec<f64>,
}

impl SensorState {
    fn new(num_servers: usize, num_enclosures: usize, num_standalone: usize) -> Self {
        let num_children = num_enclosures + num_standalone;
        let total = 2 * num_servers + num_enclosures + num_children;
        Self {
            num_servers,
            num_enclosures,
            num_children,
            ctr: vec![0; total],
            stuck_until: vec![0; total],
            stuck_val: vec![0.0; total],
        }
    }

    /// First slot of `channel` in the concatenated layout.
    fn base(&self, channel: SensorChannel) -> usize {
        match channel {
            SensorChannel::ServerPower => 0,
            SensorChannel::ServerUtilization => self.num_servers,
            SensorChannel::EnclosurePower => 2 * self.num_servers,
            SensorChannel::GroupChildPower => 2 * self.num_servers + self.num_enclosures,
        }
    }

    /// Number of slots `channel` owns.
    fn cap(&self, channel: SensorChannel) -> usize {
        match channel {
            SensorChannel::ServerPower | SensorChannel::ServerUtilization => self.num_servers,
            SensorChannel::EnclosurePower => self.num_enclosures,
            SensorChannel::GroupChildPower => self.num_children,
        }
    }

    /// Global slot of `(channel, index)`.
    fn slot(&self, channel: SensorChannel, index: usize) -> usize {
        debug_assert!(
            index < self.cap(channel),
            "sensor index {index} out of range for {channel:?}"
        );
        self.base(channel) + index
    }

    /// Mutable views of one channel's slot state, plus its slot base.
    fn channel_slices(
        &mut self,
        channel: SensorChannel,
    ) -> (usize, &mut [u64], &mut [u64], &mut [f64]) {
        let base = self.base(channel);
        let cap = self.cap(channel);
        (
            base,
            &mut self.ctr[base..base + cap],
            &mut self.stuck_until[base..base + cap],
            &mut self.stuck_val[base..base + cap],
        )
    }
}

/// The shared fault model for one sensor slot: stuck-window check, then
/// drop draw, then stuck draw, then multiplicative Gaussian noise, each
/// gated on its rate so disabled families take no draws. Draws come from
/// the slot's private counter stream, so the verdict depends only on how
/// many draws this slot has taken.
#[allow(clippy::too_many_arguments)]
fn sense_slot(
    rng: CounterRng,
    spec: &SensorFaultSpec,
    stream: u64,
    ctr: &mut u64,
    stuck_until: &mut u64,
    stuck_val: &mut f64,
    tick: u64,
    value: f64,
) -> Reading {
    if tick < *stuck_until {
        return Reading::Stuck(*stuck_val);
    }
    *stuck_until = 0;
    if spec.drop_prob > 0.0 {
        let c = *ctr;
        *ctr += 1;
        if rng.bool_at(stream, c, spec.drop_prob) {
            return Reading::Dropped;
        }
    }
    if spec.stuck_prob > 0.0 && spec.stuck_ticks > 0 {
        let c = *ctr;
        *ctr += 1;
        if rng.bool_at(stream, c, spec.stuck_prob) {
            *stuck_until = tick + spec.stuck_ticks;
            *stuck_val = value;
            return Reading::Stuck(value);
        }
    }
    if spec.noise_std > 0.0 {
        // Box–Muller from two uniforms on this slot's stream.
        let c = *ctr;
        *ctr += 2;
        let u1 = rng.f64_at(stream, c).max(1e-12);
        let u2 = rng.f64_at(stream, c + 1);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let noisy = value * (1.0 + spec.noise_std * gauss);
        return Reading::Noisy(noisy.max(0.0));
    }
    Reading::Clean(value)
}

/// Replays a [`FaultPlan`] deterministically against a running system.
///
/// One injector serves one run; the consumer (the experiment runner)
/// routes every controller sensor reading through [`FaultInjector::sense`],
/// every P-state write through [`FaultInjector::pstate_write_blocked`],
/// every budget grant through [`FaultInjector::budget_message_lost`], and
/// every controller epoch through [`FaultInjector::offline`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Counter-based generator for the per-server actuator-jam stream.
    /// Every draw is a pure function of `(server, draw counter)`, so the
    /// conditional per-write draw is shardable across worker threads
    /// without perturbing any stream.
    actuator_rng: CounterRng,
    /// Counter-based generator for the per-slot sensor streams; same
    /// shardability argument as `actuator_rng`, keyed by sensor slot.
    sensor_rng: CounterRng,
    /// Counter-based generator for the per-link budget-message-loss
    /// streams, keyed by grant-link slot; same shardability argument.
    message_rng: CounterRng,
    sensor_on: bool,
    actuator_on: bool,
    messages_on: bool,
    /// Per-slot sensor draw counters and stuck windows.
    sensors: SensorState,
    /// Jammed actuators: per server, first tick writes work again.
    stuck_actuators: Vec<u64>,
    /// Per-server position in the counter-based actuator-jam stream.
    actuator_ctr: Vec<u64>,
    /// Per-link position in the counter-based message-loss stream
    /// (one slot per grant edge: EM→member and GM→standalone links are
    /// server-shaped, GM→EM links enclosure-shaped).
    message_ctr: Vec<u64>,
}

impl FaultInjector {
    /// Builds the injector for a fleet of `num_servers` servers grouped
    /// into `num_enclosures` enclosures plus `num_standalone` servers
    /// reporting directly to the GM. The fleet shape sizes the per-slot
    /// sensor streams (two per server, one per enclosure, one per GM
    /// child).
    pub fn new(
        plan: &FaultPlan,
        num_servers: usize,
        num_enclosures: usize,
        num_standalone: usize,
    ) -> Self {
        let plan = plan.clone().normalized();
        Self {
            actuator_rng: CounterRng::new(plan.seed ^ 0x6e70_735f_6163_7475),
            sensor_rng: CounterRng::new(plan.seed ^ 0x6e70_735f_7365_6e73),
            message_rng: CounterRng::new(plan.seed ^ 0x6e70_735f_6d73_6773),
            sensor_on: plan.sensor.is_enabled(),
            actuator_on: plan.actuator.stuck_prob > 0.0 && plan.actuator.stuck_ticks > 0,
            messages_on: plan.actuator.message_loss_prob > 0.0,
            sensors: SensorState::new(num_servers, num_enclosures, num_standalone),
            stuck_actuators: vec![0; num_servers],
            actuator_ctr: vec![0; num_servers],
            // One message-loss stream per grant edge: every server has
            // exactly one inbound grant link (EM→member or GM→standalone)
            // and every enclosure one GM→EM link.
            message_ctr: vec![0; num_servers + num_enclosures],
            plan,
        }
    }

    /// Whether the plan can inject anything (a disabled injector draws no
    /// random numbers and perturbs nothing).
    pub fn enabled(&self) -> bool {
        self.plan.is_enabled()
    }

    /// The sanitized plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether sensor faults are live. The draws come from per-slot
    /// counter streams, so even when this is set [`FaultInjector::sense`]
    /// is shardable (see [`FaultInjector::draw_shards`]); when unset,
    /// `sense` is pure (`Clean(value)`, zero draws).
    pub fn sensors_active(&self) -> bool {
        self.sensor_on
    }

    /// Whether actuator jams are live. The jam draw comes from the
    /// counter-based per-server stream, so even when this is set the
    /// conditional draw is shardable (see [`FaultInjector::
    /// actuator_shards`]). When unset, every write proceeds (`false`,
    /// zero draws).
    pub fn actuators_active(&self) -> bool {
        self.actuator_on
    }

    /// Whether budget-message loss is live — i.e. whether
    /// [`FaultInjector::budget_message_lost`] may consume a draw from
    /// its link's counter stream.
    pub fn messages_active(&self) -> bool {
        self.messages_on
    }

    /// Routes one sensor reading through the fault model.
    pub fn sense(
        &mut self,
        channel: SensorChannel,
        index: usize,
        tick: u64,
        value: f64,
    ) -> Reading {
        if !self.sensor_on {
            return Reading::Clean(value);
        }
        let slot = self.sensors.slot(channel, index);
        sense_slot(
            self.sensor_rng,
            &self.plan.sensor,
            slot as u64,
            &mut self.sensors.ctr[slot],
            &mut self.sensors.stuck_until[slot],
            &mut self.sensors.stuck_val[slot],
            tick,
            value,
        )
    }

    /// Whether a P-state write to `server` at `tick` is discarded by a
    /// jammed actuator (and rolls new jams).
    ///
    /// The jam draw comes from server `server`'s private counter-based
    /// stream, **not** the shared sequential stream: the verdict depends
    /// only on how many draws that server has taken, never on what other
    /// servers or sensor channels did in between. That is what lets the
    /// conditional "draw only when a write happens" pattern run inside
    /// parallel shards while staying bit-identical to sequential order.
    pub fn pstate_write_blocked(&mut self, server: usize, tick: u64) -> bool {
        if !self.actuator_on || server >= self.stuck_actuators.len() {
            return false;
        }
        if tick < self.stuck_actuators[server] {
            return true;
        }
        let ctr = self.actuator_ctr[server];
        self.actuator_ctr[server] = ctr + 1;
        if self
            .actuator_rng
            .bool_at(server as u64, ctr, self.plan.actuator.stuck_prob)
        {
            self.stuck_actuators[server] = tick + self.plan.actuator.stuck_ticks;
            return true;
        }
        false
    }

    /// Carves the per-server actuator-jam state into disjoint shard
    /// views over `ranges` (which must be disjoint, ascending, and
    /// cover `0..num_servers`). Each shard answers
    /// [`ActuatorDrawShard::pstate_write_blocked`] for its own servers
    /// with exactly the verdicts the whole injector would produce —
    /// the draws live on per-server counter streams, so shard-local
    /// evaluation order cannot perturb anything.
    pub fn actuator_shards(&mut self, ranges: &[Range<usize>]) -> Vec<ActuatorDrawShard<'_>> {
        carve_actuator_shards(
            &mut self.stuck_actuators,
            &mut self.actuator_ctr,
            ranges,
            self.actuator_on,
            self.plan.actuator,
            self.actuator_rng,
        )
    }

    /// Carves actuator-jam state **and** one per-server sensor channel
    /// (`ServerPower` for SM epochs, `ServerUtilization` for EC epochs)
    /// into paired shard views over the same server `ranges`, so one
    /// worker can take both the sense and the write draws for its
    /// servers.
    pub fn draw_shards(
        &mut self,
        ranges: &[Range<usize>],
        channel: SensorChannel,
    ) -> Vec<(ActuatorDrawShard<'_>, SensorDrawShard<'_>)> {
        debug_assert!(
            matches!(
                channel,
                SensorChannel::ServerPower | SensorChannel::ServerUtilization
            ),
            "draw_shards carves per-server channels; got {channel:?}"
        );
        let act = carve_actuator_shards(
            &mut self.stuck_actuators,
            &mut self.actuator_ctr,
            ranges,
            self.actuator_on,
            self.plan.actuator,
            self.actuator_rng,
        );
        let (base, ctr, until, val) = self.sensors.channel_slices(channel);
        let sens = carve_sensor_shards(
            ctr,
            until,
            val,
            base,
            ranges,
            self.sensor_on,
            self.plan.sensor,
            self.sensor_rng,
        );
        act.into_iter().zip(sens).collect()
    }

    /// Carves actuator-jam state over `server_ranges` paired with the
    /// `EnclosurePower` sense state over `enc_ranges` (one enclosure
    /// range per server range) for EM epochs, where each shard clamps
    /// its servers but senses its enclosures.
    pub fn em_draw_shards(
        &mut self,
        server_ranges: &[Range<usize>],
        enc_ranges: &[Range<usize>],
    ) -> Vec<(ActuatorDrawShard<'_>, SensorDrawShard<'_>)> {
        debug_assert_eq!(server_ranges.len(), enc_ranges.len());
        let act = carve_actuator_shards(
            &mut self.stuck_actuators,
            &mut self.actuator_ctr,
            server_ranges,
            self.actuator_on,
            self.plan.actuator,
            self.actuator_rng,
        );
        let (base, ctr, until, val) = self.sensors.channel_slices(SensorChannel::EnclosurePower);
        let sens = carve_sensor_shards(
            ctr,
            until,
            val,
            base,
            enc_ranges,
            self.sensor_on,
            self.plan.sensor,
            self.sensor_rng,
        );
        act.into_iter().zip(sens).collect()
    }

    /// Carves the `GroupChildPower` sense state into paired shard views
    /// for GM window fan-out: per shard, one view over its enclosure
    /// children (`enc_ranges`, enclosure index space) and one over its
    /// standalone children (`sa_ranges`, standalone ordinal space — the
    /// standalone child `k` is GM child `num_enclosures + k`).
    pub fn gm_child_shards(
        &mut self,
        enc_ranges: &[Range<usize>],
        sa_ranges: &[Range<usize>],
    ) -> Vec<(SensorDrawShard<'_>, SensorDrawShard<'_>)> {
        debug_assert_eq!(enc_ranges.len(), sa_ranges.len());
        let num_enclosures = self.sensors.num_enclosures;
        let (base, ctr, until, val) = self.sensors.channel_slices(SensorChannel::GroupChildPower);
        let (ctr_e, ctr_s) = ctr.split_at_mut(num_enclosures);
        let (until_e, until_s) = until.split_at_mut(num_enclosures);
        let (val_e, val_s) = val.split_at_mut(num_enclosures);
        let enc = carve_sensor_shards(
            ctr_e,
            until_e,
            val_e,
            base,
            enc_ranges,
            self.sensor_on,
            self.plan.sensor,
            self.sensor_rng,
        );
        let sa = carve_sensor_shards(
            ctr_s,
            until_s,
            val_s,
            base + num_enclosures,
            sa_ranges,
            self.sensor_on,
            self.plan.sensor,
            self.sensor_rng,
        );
        enc.into_iter().zip(sa).collect()
    }

    /// Whether one budget grant message on grant link `link` is lost in
    /// transit.
    ///
    /// The loss draw comes from link `link`'s private counter-based
    /// stream: the verdict depends only on how many grants that link has
    /// carried, never on what other links did in between, so the grant
    /// replay of the parallel EM reduction needs no sequential pre-pass.
    pub fn budget_message_lost(&mut self, link: usize) -> bool {
        if !self.messages_on || link >= self.message_ctr.len() {
            return false;
        }
        let ctr = self.message_ctr[link];
        self.message_ctr[link] = ctr + 1;
        self.message_rng
            .bool_at(link as u64, ctr, self.plan.actuator.message_loss_prob)
    }

    /// Whether server `server`'s P-state actuator is currently jammed at
    /// `tick` — a pure read of the latched jam window, consuming no draw.
    /// The invariant monitor uses this to exempt servers whose actuator
    /// is known-stuck (an injected plant fault, already counted in the
    /// fault stats) from the electrical-cap check.
    pub fn actuator_jammed(&self, server: usize, tick: u64) -> bool {
        self.stuck_actuators
            .get(server)
            .is_some_and(|&thaw| tick < thaw)
    }

    /// Whether instance `index` of `layer` is offline at `tick`.
    pub fn offline(&self, layer: ControllerLayer, index: usize, tick: u64) -> bool {
        self.plan
            .outages
            .iter()
            .any(|w| w.covers(layer, index, tick))
    }

    /// Captures the injector's dynamic state (per-slot draw counters,
    /// stuck windows, jammed actuators) for checkpointing. Held sensor
    /// values are bit-packed so the JSON roundtrip is exact; the layout
    /// is dense and fleet-shaped, so snapshots of equal states are
    /// byte-identical.
    pub fn snapshot(&self) -> InjectorSnapshot {
        InjectorSnapshot {
            sensor_ctr: self.sensors.ctr.clone(),
            sensor_stuck_until: self.sensors.stuck_until.clone(),
            sensor_stuck_val_bits: self.sensors.stuck_val.iter().map(|v| v.to_bits()).collect(),
            stuck_actuators: self.stuck_actuators.clone(),
            actuator_ctr: self.actuator_ctr.clone(),
            message_ctr: self.message_ctr.clone(),
        }
    }

    /// Restores state captured by [`FaultInjector::snapshot`]. The
    /// injector must have been built from the same plan and fleet shape.
    pub fn restore(&mut self, snap: &InjectorSnapshot) {
        debug_assert_eq!(self.sensors.ctr.len(), snap.sensor_ctr.len());
        self.sensors.ctr = snap.sensor_ctr.clone();
        self.sensors.stuck_until = snap.sensor_stuck_until.clone();
        self.sensors.stuck_val = snap
            .sensor_stuck_val_bits
            .iter()
            .map(|&bits| f64::from_bits(bits))
            .collect();
        self.stuck_actuators = snap.stuck_actuators.clone();
        self.actuator_ctr = snap.actuator_ctr.clone();
        self.message_ctr = snap.message_ctr.clone();
    }
}

/// Splits `data` into disjoint `&mut` sub-slices over `ranges`, which
/// must be disjoint and ascending (gaps are skipped).
fn split_ranges_mut<'a, T>(mut data: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for range in ranges {
        debug_assert!(range.start >= consumed, "shard ranges must ascend");
        let (_skip, rest) = data.split_at_mut(range.start - consumed);
        let (head, rest) = rest.split_at_mut(range.len());
        data = rest;
        consumed = range.end;
        out.push(head);
    }
    out
}

fn carve_actuator_shards<'a>(
    thaw: &'a mut [u64],
    ctr: &'a mut [u64],
    ranges: &[Range<usize>],
    active: bool,
    spec: ActuatorFaultSpec,
    rng: CounterRng,
) -> Vec<ActuatorDrawShard<'a>> {
    let thaws = split_ranges_mut(thaw, ranges);
    let ctrs = split_ranges_mut(ctr, ranges);
    ranges
        .iter()
        .zip(thaws)
        .zip(ctrs)
        .map(|((range, thaw), ctr)| ActuatorDrawShard {
            lo: range.start,
            active,
            prob: spec.stuck_prob,
            stuck_ticks: spec.stuck_ticks,
            rng,
            thaw,
            ctr,
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn carve_sensor_shards<'a>(
    ctr: &'a mut [u64],
    stuck_until: &'a mut [u64],
    stuck_val: &'a mut [f64],
    slot_base: usize,
    ranges: &[Range<usize>],
    active: bool,
    spec: SensorFaultSpec,
    rng: CounterRng,
) -> Vec<SensorDrawShard<'a>> {
    let ctrs = split_ranges_mut(ctr, ranges);
    let untils = split_ranges_mut(stuck_until, ranges);
    let vals = split_ranges_mut(stuck_val, ranges);
    ranges
        .iter()
        .zip(ctrs)
        .zip(untils)
        .zip(vals)
        .map(|(((range, ctr), stuck_until), stuck_val)| SensorDrawShard {
            lo: range.start,
            slot0: slot_base + range.start,
            active,
            spec,
            rng,
            ctr,
            stuck_until,
            stuck_val,
        })
        .collect()
}

/// A disjoint per-shard view of the actuator-jam state, produced by
/// [`FaultInjector::actuator_shards`]. Holds `&mut` slices of the
/// injector's thaw ticks and draw counters for one contiguous server
/// range, so worker threads can take the conditional jam draw locally.
#[derive(Debug)]
pub struct ActuatorDrawShard<'a> {
    lo: usize,
    active: bool,
    prob: f64,
    stuck_ticks: u64,
    rng: CounterRng,
    thaw: &'a mut [u64],
    ctr: &'a mut [u64],
}

impl ActuatorDrawShard<'_> {
    /// Shard-local replica of [`FaultInjector::pstate_write_blocked`]
    /// for `server` (a global index inside this shard's range).
    pub fn pstate_write_blocked(&mut self, server: usize, tick: u64) -> bool {
        if !self.active {
            return false;
        }
        let i = server - self.lo;
        if tick < self.thaw[i] {
            return true;
        }
        let ctr = self.ctr[i];
        self.ctr[i] = ctr + 1;
        if self.rng.bool_at(server as u64, ctr, self.prob) {
            self.thaw[i] = tick + self.stuck_ticks;
            return true;
        }
        false
    }
}

/// A disjoint per-shard view of one sensor channel's fault state,
/// produced by [`FaultInjector::draw_shards`] and friends. Holds `&mut`
/// slices of the per-slot counters and stuck windows for one contiguous
/// index range, so worker threads can take the conditional sense draws
/// locally with exactly the verdicts the whole injector would produce.
#[derive(Debug)]
pub struct SensorDrawShard<'a> {
    /// First channel index of this shard.
    lo: usize,
    /// Global sensor slot of `lo` (the CounterRng stream base).
    slot0: usize,
    active: bool,
    spec: SensorFaultSpec,
    rng: CounterRng,
    ctr: &'a mut [u64],
    stuck_until: &'a mut [u64],
    stuck_val: &'a mut [f64],
}

impl SensorDrawShard<'_> {
    /// Shard-local replica of [`FaultInjector::sense`] for `index` (a
    /// channel-space index inside this shard's range).
    pub fn sense(&mut self, index: usize, tick: u64, value: f64) -> Reading {
        if !self.active {
            return Reading::Clean(value);
        }
        let i = index - self.lo;
        sense_slot(
            self.rng,
            &self.spec,
            (self.slot0 + i) as u64,
            &mut self.ctr[i],
            &mut self.stuck_until[i],
            &mut self.stuck_val[i],
            tick,
            value,
        )
    }
}

/// The fault injector's full dynamic state (checkpoint section). All
/// vectors are dense and fleet-shaped; `sensor_*` entries are indexed by
/// global sensor slot (channels concatenated in declaration order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorSnapshot {
    /// Per-slot positions in the counter-based sensor streams.
    pub sensor_ctr: Vec<u64>,
    /// Per-slot sensor thaw ticks (`0` = not stuck).
    pub sensor_stuck_until: Vec<u64>,
    /// Per-slot held sensor values, as IEEE-754 bits.
    pub sensor_stuck_val_bits: Vec<u64>,
    /// Per-server actuator thaw ticks.
    pub stuck_actuators: Vec<u64>,
    /// Per-server positions in the counter-based actuator-jam stream.
    pub actuator_ctr: Vec<u64>,
    /// Per-link positions in the counter-based message-loss stream.
    pub message_ctr: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan::disabled()
            .with_seed(7)
            .with_sensor_noise(0.1)
            .with_stuck_sensors(0.05, 10)
            .with_dropped_samples(0.05)
            .with_stuck_actuators(0.05, 10)
            .with_message_loss(0.2)
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        let mut inj = FaultInjector::new(&plan, 4, 2, 1);
        assert!(!inj.enabled());
        for t in 0..100 {
            assert_eq!(
                inj.sense(SensorChannel::ServerPower, 0, t, 42.0),
                Reading::Clean(42.0)
            );
            assert!(!inj.pstate_write_blocked(0, t));
            assert!(!inj.budget_message_lost(0));
            assert!(!inj.offline(ControllerLayer::Gm, 0, t));
        }
    }

    #[test]
    fn zero_rate_plan_counts_as_disabled() {
        // Nonzero seed and stuck_ticks but every probability zero: nothing
        // can fire, so the plan must behave exactly like `disabled()`.
        let plan = FaultPlan {
            seed: 99,
            sensor: SensorFaultSpec {
                stuck_ticks: 50,
                ..SensorFaultSpec::default()
            },
            actuator: ActuatorFaultSpec {
                stuck_ticks: 50,
                ..ActuatorFaultSpec::default()
            },
            outages: vec![],
        };
        assert!(!plan.is_enabled());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = noisy_plan();
        let mut a = FaultInjector::new(&plan, 8, 2, 1);
        let mut b = FaultInjector::new(&plan, 8, 2, 1);
        for t in 0..500 {
            let i = (t as usize) % 8;
            assert_eq!(
                a.sense(SensorChannel::ServerPower, i, t, 100.0),
                b.sense(SensorChannel::ServerPower, i, t, 100.0)
            );
            assert_eq!(a.pstate_write_blocked(i, t), b.pstate_write_blocked(i, t));
            assert_eq!(a.budget_message_lost(i), b.budget_message_lost(i));
        }
    }

    #[test]
    fn stuck_sensor_holds_value_then_thaws() {
        let plan = FaultPlan::disabled()
            .with_seed(3)
            .with_stuck_sensors(1.0, 5);
        let mut inj = FaultInjector::new(&plan, 1, 1, 0);
        let first = inj.sense(SensorChannel::ServerUtilization, 0, 0, 0.8);
        assert_eq!(first, Reading::Stuck(0.8));
        // Later readings inside the window return the frozen value even as
        // the true reading moves.
        assert_eq!(
            inj.sense(SensorChannel::ServerUtilization, 0, 3, 0.1),
            Reading::Stuck(0.8)
        );
        // After the thaw tick the (always-firing) stuck fault re-freezes at
        // the *new* value — proof the old window expired.
        assert_eq!(
            inj.sense(SensorChannel::ServerUtilization, 0, 5, 0.2),
            Reading::Stuck(0.2)
        );
    }

    #[test]
    fn channels_do_not_share_stuck_state() {
        let plan = FaultPlan::disabled()
            .with_seed(3)
            .with_stuck_sensors(1.0, 100);
        let mut inj = FaultInjector::new(&plan, 2, 1, 0);
        assert_eq!(
            inj.sense(SensorChannel::ServerPower, 0, 0, 50.0),
            Reading::Stuck(50.0)
        );
        assert_eq!(
            inj.sense(SensorChannel::EnclosurePower, 0, 1, 200.0),
            Reading::Stuck(200.0)
        );
        assert_eq!(
            inj.sense(SensorChannel::ServerPower, 0, 2, 75.0),
            Reading::Stuck(50.0)
        );
    }

    #[test]
    fn jammed_actuator_blocks_for_its_window() {
        let plan = FaultPlan::disabled()
            .with_seed(1)
            .with_stuck_actuators(1.0, 4);
        let mut inj = FaultInjector::new(&plan, 2, 1, 0);
        assert!(inj.pstate_write_blocked(0, 10)); // jams until t=14
        assert!(inj.pstate_write_blocked(0, 13));
        // At t=14 the window expired, but stuck_prob=1 re-jams instantly;
        // the other server has its own independent state.
        assert!(inj.pstate_write_blocked(1, 10));
    }

    #[test]
    fn noise_perturbs_but_stays_nonnegative() {
        let plan = FaultPlan::disabled().with_seed(11).with_sensor_noise(2.0);
        let mut inj = FaultInjector::new(&plan, 1, 1, 0);
        let mut saw_change = false;
        for t in 0..200 {
            match inj.sense(SensorChannel::ServerPower, 0, t, 10.0) {
                Reading::Noisy(v) => {
                    assert!(v.is_finite() && v >= 0.0);
                    if (v - 10.0).abs() > 1e-9 {
                        saw_change = true;
                    }
                }
                other => panic!("expected noise, got {other:?}"),
            }
        }
        assert!(saw_change);
    }

    #[test]
    fn outage_windows_cover_layer_and_instance() {
        let plan = FaultPlan::disabled()
            .with_outage(ControllerLayer::Em, Some(2), 100, 200)
            .with_outage(ControllerLayer::Gm, None, 50, 60);
        let inj = FaultInjector::new(&plan, 4, 2, 0);
        assert!(inj.offline(ControllerLayer::Em, 2, 150));
        assert!(!inj.offline(ControllerLayer::Em, 1, 150));
        assert!(!inj.offline(ControllerLayer::Em, 2, 200));
        assert!(inj.offline(ControllerLayer::Gm, 0, 55));
        assert!(!inj.offline(ControllerLayer::Sm, 2, 150));
    }

    #[test]
    fn sanitize_clamps_rates_and_drops_empty_windows() {
        let plan = FaultPlan {
            seed: 0,
            sensor: SensorFaultSpec {
                noise_std: f64::NAN,
                stuck_prob: 7.0,
                stuck_ticks: 5,
                drop_prob: -3.0,
            },
            actuator: ActuatorFaultSpec {
                stuck_prob: f64::INFINITY,
                stuck_ticks: 5,
                message_loss_prob: 2.0,
            },
            outages: vec![OutageWindow {
                layer: ControllerLayer::Sm,
                index: None,
                start: 10,
                end: 10,
            }],
        }
        .sanitized();
        assert_eq!(plan.sensor.noise_std, 0.0);
        assert_eq!(plan.sensor.stuck_prob, 1.0);
        assert_eq!(plan.sensor.drop_prob, 0.0);
        assert_eq!(plan.actuator.stuck_prob, 0.0); // non-finite rejected, not clamped
        assert_eq!(plan.actuator.message_loss_prob, 1.0);
        assert!(plan.outages.is_empty());
    }

    #[test]
    fn injector_snapshot_resumes_fault_stream() {
        let plan = noisy_plan();
        let mut live = FaultInjector::new(&plan, 8, 2, 1);
        for t in 0..300 {
            let i = (t as usize) % 8;
            live.sense(SensorChannel::ServerPower, i, t, 100.0 + t as f64);
            live.pstate_write_blocked(i, t);
            live.budget_message_lost(i);
        }
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snap: InjectorSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = FaultInjector::new(&plan, 8, 2, 1);
        resumed.restore(&snap);
        for t in 300..600 {
            let i = (t as usize) % 8;
            assert_eq!(
                live.sense(SensorChannel::ServerPower, i, t, 50.0),
                resumed.sense(SensorChannel::ServerPower, i, t, 50.0)
            );
            assert_eq!(
                live.pstate_write_blocked(i, t),
                resumed.pstate_write_blocked(i, t)
            );
            assert_eq!(live.budget_message_lost(i), resumed.budget_message_lost(i));
        }
    }

    #[test]
    fn actuator_draws_are_independent_of_other_streams() {
        // The jam stream is counter-based per server: interleaving any
        // number of sensor/message draws must not change the verdicts.
        let plan = noisy_plan();
        let mut quiet = FaultInjector::new(&plan, 4, 2, 0);
        let mut busy = FaultInjector::new(&plan, 4, 2, 0);
        for t in 0..400 {
            let i = (t as usize) % 4;
            // `busy` burns sensor and message draws between actuator draws.
            busy.sense(SensorChannel::ServerPower, i, t, 80.0);
            busy.budget_message_lost(i);
            assert_eq!(
                quiet.pstate_write_blocked(i, t),
                busy.pstate_write_blocked(i, t),
                "jam verdict diverged at tick {t}"
            );
        }
    }

    #[test]
    fn sensor_draws_are_independent_of_other_streams() {
        // Sensor draws live on per-slot counter streams too: burning
        // message-loss draws and sensing *other* slots in between must
        // not change any slot's verdict sequence.
        let plan = noisy_plan();
        let mut quiet = FaultInjector::new(&plan, 4, 2, 1);
        let mut busy = FaultInjector::new(&plan, 4, 2, 1);
        for t in 0..400 {
            let i = (t as usize) % 4;
            busy.budget_message_lost(i);
            busy.sense(SensorChannel::EnclosurePower, (t as usize) % 2, t, 900.0);
            busy.sense(SensorChannel::GroupChildPower, (t as usize) % 3, t, 1800.0);
            assert_eq!(
                quiet.sense(SensorChannel::ServerPower, i, t, 80.0),
                busy.sense(SensorChannel::ServerPower, i, t, 80.0),
                "sense verdict diverged at tick {t}"
            );
        }
    }

    #[test]
    fn message_draws_are_per_link_counter_streams() {
        // A link's loss verdicts depend only on how many grants *that
        // link* has carried — interleaving draws on other links (or any
        // sensor/actuator draws) must not perturb the sequence.
        let plan = noisy_plan();
        // 8 servers + 2 enclosures = 10 grant links; the compared links
        // (0..5) and the interference links (5..10) stay disjoint.
        let mut quiet = FaultInjector::new(&plan, 8, 2, 0);
        let mut busy = FaultInjector::new(&plan, 8, 2, 0);
        for t in 0..400 {
            let link = (t as usize) % 5;
            busy.budget_message_lost(5 + link);
            busy.sense(SensorChannel::ServerPower, link, t, 80.0);
            busy.pstate_write_blocked(link, t);
            assert_eq!(
                quiet.budget_message_lost(link),
                busy.budget_message_lost(link),
                "loss verdict diverged at tick {t}"
            );
        }
    }

    #[test]
    fn out_of_range_links_never_lose_messages() {
        let plan = noisy_plan();
        let mut inj = FaultInjector::new(&plan, 2, 1, 0);
        // 2 servers + 1 enclosure = 3 grant links; anything past that is
        // a routing bug upstream, answered conservatively with "not lost"
        // and zero draws.
        assert!(!inj.budget_message_lost(3));
        assert!(!inj.budget_message_lost(usize::MAX));
    }

    #[test]
    fn normalized_merges_overlapping_and_adjacent_windows() {
        let plan = FaultPlan::disabled()
            .with_outage(ControllerLayer::Em, Some(1), 30, 40)
            .with_outage(ControllerLayer::Em, Some(1), 10, 20)
            .with_outage(ControllerLayer::Em, Some(1), 20, 32) // adjacent + overlap
            .with_outage(ControllerLayer::Em, Some(2), 15, 25) // other instance
            .with_outage(ControllerLayer::Gm, None, 5, 9)
            .with_outage(ControllerLayer::Gm, None, 9, 12) // adjacent
            .normalized();
        assert_eq!(
            plan.outages,
            vec![
                OutageWindow {
                    layer: ControllerLayer::Em,
                    index: Some(1),
                    start: 10,
                    end: 40,
                },
                OutageWindow {
                    layer: ControllerLayer::Em,
                    index: Some(2),
                    start: 15,
                    end: 25,
                },
                OutageWindow {
                    layer: ControllerLayer::Gm,
                    index: None,
                    start: 5,
                    end: 12,
                },
            ]
        );
    }

    #[test]
    fn normalized_keeps_whole_layer_windows_apart_from_indexed_ones() {
        // An `index: None` window covers every instance; merging it with
        // an indexed window would change the covered set, so they stay
        // separate even when the tick ranges touch.
        let plan = FaultPlan::disabled()
            .with_outage(ControllerLayer::Em, None, 10, 20)
            .with_outage(ControllerLayer::Em, Some(0), 15, 30)
            .normalized();
        assert_eq!(plan.outages.len(), 2);
        // The union semantics are unchanged either way.
        let inj = FaultInjector::new(&plan, 4, 2, 0);
        assert!(inj.offline(ControllerLayer::Em, 0, 25));
        assert!(inj.offline(ControllerLayer::Em, 1, 12));
        assert!(!inj.offline(ControllerLayer::Em, 1, 25));
    }

    #[test]
    fn normalized_covers_exactly_what_the_raw_plan_covers() {
        // Merging is a pure union: every (layer, instance, tick) triple
        // answers `offline` identically before and after normalization.
        let raw = FaultPlan::disabled()
            .with_outage(ControllerLayer::Sm, Some(3), 0, 5)
            .with_outage(ControllerLayer::Sm, Some(3), 5, 7)
            .with_outage(ControllerLayer::Em, None, 20, 25)
            .with_outage(ControllerLayer::Em, Some(1), 24, 40)
            .with_outage(ControllerLayer::Gm, None, 50, 60)
            .with_outage(ControllerLayer::Gm, None, 55, 58);
        let norm = raw.clone().normalized();
        let covered =
            |plan: &FaultPlan, layer, idx, t| plan.outages.iter().any(|w| w.covers(layer, idx, t));
        for t in 0..70 {
            for layer in [
                ControllerLayer::Sm,
                ControllerLayer::Em,
                ControllerLayer::Gm,
            ] {
                for idx in 0..6 {
                    assert_eq!(
                        covered(&raw, layer, idx, t),
                        covered(&norm, layer, idx, t),
                        "coverage diverged at ({layer:?}, {idx}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn actuator_shards_replay_the_whole_injector() {
        let plan = noisy_plan();
        let mut whole = FaultInjector::new(&plan, 10, 2, 0);
        let mut sharded = FaultInjector::new(&plan, 10, 2, 0);
        for t in 0..200 {
            let want: Vec<bool> = (0..10).map(|i| whole.pstate_write_blocked(i, t)).collect();
            let mut got = vec![false; 10];
            let mut shards = sharded.actuator_shards(&[0..3, 3..7, 7..10]);
            // Deliberately evaluate shards out of order: counter streams
            // make the order irrelevant.
            for shard in shards.iter_mut().rev() {
                for (i, slot) in got.iter_mut().enumerate() {
                    if (shard.lo..shard.lo + shard.thaw.len()).contains(&i) {
                        *slot = shard.pstate_write_blocked(i, t);
                    }
                }
            }
            assert_eq!(want, got, "shard verdicts diverged at tick {t}");
        }
        // And the underlying state (thaw ticks + counters) stayed in
        // lockstep, so the next sequential draw agrees too.
        assert_eq!(whole.snapshot(), sharded.snapshot());
    }

    #[test]
    fn sensor_shards_replay_the_whole_injector() {
        let plan = noisy_plan();
        let mut whole = FaultInjector::new(&plan, 10, 2, 0);
        let mut sharded = FaultInjector::new(&plan, 10, 2, 0);
        for t in 0..200 {
            let want: Vec<Reading> = (0..10)
                .map(|i| whole.sense(SensorChannel::ServerPower, i, t, 60.0 + i as f64))
                .collect();
            let wall = whole.pstate_write_blocked(3, t);
            let mut got = vec![Reading::Dropped; 10];
            let mut blocked = false;
            let ranges = [0..3, 3..7, 7..10];
            let mut shards = sharded.draw_shards(&ranges, SensorChannel::ServerPower);
            // Deliberately evaluate shards out of order: counter streams
            // make the order irrelevant.
            for (k, (act, sens)) in shards.iter_mut().enumerate().rev() {
                for i in ranges[k].clone() {
                    got[i] = sens.sense(i, t, 60.0 + i as f64);
                    if i == 3 {
                        blocked = act.pstate_write_blocked(i, t);
                    }
                }
            }
            assert_eq!(want, got, "sense verdicts diverged at tick {t}");
            assert_eq!(wall, blocked, "jam verdict diverged at tick {t}");
        }
        assert_eq!(whole.snapshot(), sharded.snapshot());
    }

    #[test]
    fn gm_child_shards_replay_the_whole_injector() {
        // 2 enclosures + 3 standalone servers = 5 GM children; the
        // standalone child k is GM child 2 + k.
        let plan = noisy_plan();
        let mut whole = FaultInjector::new(&plan, 8, 2, 3);
        let mut sharded = FaultInjector::new(&plan, 8, 2, 3);
        for t in 0..200 {
            let want: Vec<Reading> = (0..5)
                .map(|c| whole.sense(SensorChannel::GroupChildPower, c, t, 400.0 + c as f64))
                .collect();
            let mut got = vec![Reading::Dropped; 5];
            let enc_ranges = [0..1, 1..2];
            let sa_ranges = [0..2, 2..3];
            let mut shards = sharded.gm_child_shards(&enc_ranges, &sa_ranges);
            for (k, (enc, sa)) in shards.iter_mut().enumerate().rev() {
                for e in enc_ranges[k].clone() {
                    got[e] = enc.sense(e, t, 400.0 + e as f64);
                }
                for s in sa_ranges[k].clone() {
                    got[2 + s] = sa.sense(s, t, 400.0 + (2 + s) as f64);
                }
            }
            assert_eq!(want, got, "GM child verdicts diverged at tick {t}");
        }
        assert_eq!(whole.snapshot(), sharded.snapshot());
    }

    #[test]
    fn em_draw_shards_pair_servers_with_enclosures() {
        let plan = noisy_plan();
        let mut whole = FaultInjector::new(&plan, 6, 3, 0);
        let mut sharded = FaultInjector::new(&plan, 6, 3, 0);
        for t in 0..100 {
            let want_sense: Vec<Reading> = (0..3)
                .map(|e| whole.sense(SensorChannel::EnclosurePower, e, t, 700.0))
                .collect();
            let want_block: Vec<bool> = (0..6).map(|s| whole.pstate_write_blocked(s, t)).collect();
            let server_ranges = [0..2, 2..6];
            let enc_ranges = [0..1, 1..3];
            let mut got_sense = vec![Reading::Dropped; 3];
            let mut got_block = vec![false; 6];
            let mut shards = sharded.em_draw_shards(&server_ranges, &enc_ranges);
            for (k, (act, sens)) in shards.iter_mut().enumerate().rev() {
                for e in enc_ranges[k].clone() {
                    got_sense[e] = sens.sense(e, t, 700.0);
                }
                for s in server_ranges[k].clone() {
                    got_block[s] = act.pstate_write_blocked(s, t);
                }
            }
            assert_eq!(want_sense, got_sense, "EM sense diverged at tick {t}");
            assert_eq!(want_block, got_block, "EM jam diverged at tick {t}");
        }
        assert_eq!(whole.snapshot(), sharded.snapshot());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = noisy_plan().with_outage(ControllerLayer::Em, Some(1), 5, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}

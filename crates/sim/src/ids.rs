use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                Self(i)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type! {
    /// Index of a server within a [`crate::Topology`].
    ServerId
}
id_type! {
    /// Index of a blade enclosure within a [`crate::Topology`].
    EnclosureId
}
id_type! {
    /// Index of a virtual machine (equivalently, of its workload trace).
    VmId
}
id_type! {
    /// Index of a rack (a group of enclosures) within a [`crate::Topology`].
    RackId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(ServerId(1) < ServerId(2));
        assert_eq!(VmId::from(3).index(), 3);
        assert_eq!(EnclosureId(0).to_string(), "EnclosureId(0)");
    }
}

//! Structured event log for simulation runs.
//!
//! Production power-management stacks keep an audit trail of every
//! actuation (who throttled what, when, and why); this module provides
//! the simulator's equivalent. The log is bounded (a ring of the most
//! recent events) so long runs stay memory-safe, with total counters that
//! never drop.

use serde::{Deserialize, Serialize};

use crate::ids::{ServerId, VmId};

/// One logged simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Event {
    /// A VM migration started.
    MigrationStarted {
        /// The moved VM.
        vm: VmId,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
    },
    /// A server was powered on.
    PoweredOn {
        /// The server.
        server: ServerId,
    },
    /// A server was powered off.
    PoweredOff {
        /// The server.
        server: ServerId,
    },
    /// Two controllers wrote different P-states to one server within the
    /// same tick (the "power struggle").
    PStateConflict {
        /// The contended server.
        server: ServerId,
    },
    /// A server tripped thermal failover.
    ThermalFailover {
        /// The failed server.
        server: ServerId,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Tick at which the event occurred.
    pub tick: u64,
    /// The event.
    pub event: Event,
}

/// Bounded ring log of recent events plus lifetime counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    capacity: usize,
    ring: Vec<LoggedEvent>,
    next: usize,
    total: u64,
}

impl EventLog {
    /// Creates a log retaining up to `capacity` recent events
    /// (capacity 0 disables retention but keeps counting).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: Vec::with_capacity(capacity.min(1_024)),
            next: 0,
            total: 0,
        }
    }

    /// Records an event at `tick`.
    pub fn record(&mut self, tick: u64, event: Event) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        let entry = LoggedEvent { tick, event };
        if self.ring.len() < self.capacity {
            self.ring.push(entry);
        } else {
            self.ring[self.next] = entry;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<LoggedEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() < self.capacity {
            out.extend_from_slice(&self.ring);
        } else {
            out.extend_from_slice(&self.ring[self.next..]);
            out.extend_from_slice(&self.ring[..self.next]);
        }
        out
    }

    /// The retained events matching a predicate, oldest first.
    pub fn filter(&self, mut pred: impl FnMut(&LoggedEvent) -> bool) -> Vec<LoggedEvent> {
        self.recent().into_iter().filter(|e| pred(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(server: usize) -> Event {
        Event::PoweredOn {
            server: ServerId(server),
        }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut log = EventLog::new(3);
        log.record(1, ev(0));
        log.record(2, ev(1));
        let r = log.recent();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].tick, 1);
        assert_eq!(r[1].tick, 2);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_counting() {
        let mut log = EventLog::new(2);
        for t in 0..5 {
            log.record(t, ev(t as usize));
        }
        assert_eq!(log.total_events(), 5);
        let r = log.recent();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].tick, 3);
        assert_eq!(r[1].tick, 4);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut log = EventLog::new(0);
        log.record(1, ev(0));
        assert_eq!(log.total_events(), 1);
        assert!(log.recent().is_empty());
    }

    #[test]
    fn filter_selects_event_kinds() {
        let mut log = EventLog::new(10);
        log.record(
            1,
            Event::PoweredOff {
                server: ServerId(0),
            },
        );
        log.record(
            2,
            Event::MigrationStarted {
                vm: VmId(3),
                from: ServerId(0),
                to: ServerId(1),
            },
        );
        log.record(
            3,
            Event::ThermalFailover {
                server: ServerId(2),
            },
        );
        let migrations = log.filter(|e| matches!(e.event, Event::MigrationStarted { .. }));
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].tick, 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut log = EventLog::new(4);
        log.record(
            7,
            Event::PStateConflict {
                server: ServerId(1),
            },
        );
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}

//! Property-based invariants of the simulation engine under random
//! workloads, random actuation, and random migrations.

use nps_models::{PState, ServerModel};
use nps_sim::{Placement, ServerId, SimConfig, Simulation, Topology, VmId};
use nps_traces::UtilTrace;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Step,
    SetPstate(usize, usize),
    Migrate(usize, usize),
    PowerCycle(usize),
}

fn arb_action(servers: usize, vms: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => Just(Action::Step),
        2 => (0..servers, 0..8usize).prop_map(|(s, p)| Action::SetPstate(s, p)),
        2 => (0..vms, 0..servers).prop_map(|(v, s)| Action::Migrate(v, s)),
        1 => (0..servers).prop_map(Action::PowerCycle),
    ]
}

fn build_sim(demands: &[f64], servers: usize) -> Simulation {
    let topo = Topology::builder()
        .enclosure(servers / 2)
        .standalone(servers - servers / 2)
        .build();
    let traces: Vec<UtilTrace> = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| UtilTrace::constant(format!("w{i}"), d, 7).unwrap())
        .collect();
    Simulation::with_models_and_placement(
        topo,
        vec![ServerModel::blade_a(); servers],
        traces,
        Placement::one_per_server(demands.len(), servers),
        SimConfig::default(),
    )
    .unwrap()
}

proptest! {
    #[test]
    fn engine_invariants_hold_under_random_actuation(
        demands in proptest::collection::vec(0.0f64..1.0, 1..8),
        actions in proptest::collection::vec(arb_action(4, 8), 0..60),
    ) {
        let servers = 4;
        let mut sim = build_sim(&demands, servers);
        let vms = demands.len();
        for a in actions {
            match a {
                Action::Step => sim.step(),
                Action::SetPstate(s, p) if s < servers => {
                    sim.set_pstate(ServerId(s), PState(p));
                    // Clamped into the table.
                    prop_assert!(sim.pstate(ServerId(s)).index() < 5);
                }
                Action::Migrate(v, s) if v < vms && s < servers => {
                    // Either succeeds or fails cleanly (off target).
                    let was = sim.placement().host_of(VmId(v));
                    match sim.migrate(VmId(v), ServerId(s)) {
                        Ok(()) => prop_assert_eq!(sim.placement().host_of(VmId(v)), ServerId(s)),
                        Err(_) => prop_assert_eq!(sim.placement().host_of(VmId(v)), was),
                    }
                }
                Action::PowerCycle(s) if s < servers => {
                    let sid = ServerId(s);
                    if sim.is_on(sid) {
                        // Off only succeeds when empty.
                        let occupied = !sim.residents(sid).is_empty();
                        let res = sim.power_off(sid);
                        prop_assert_eq!(res.is_err(), occupied);
                    } else {
                        sim.power_on(sid).unwrap();
                    }
                }
                _ => {}
            }
            // Invariants after every action:
            // 1. residents() partition exactly matches placement().
            let mut seen = vec![false; vms];
            for s in 0..servers {
                for &vm in sim.residents(ServerId(s)) {
                    prop_assert_eq!(sim.placement().host_of(vm), ServerId(s));
                    prop_assert!(!seen[vm.index()], "vm listed twice");
                    seen[vm.index()] = true;
                }
            }
            prop_assert!(seen.iter().all(|&x| x), "vm missing from residents");
            // 2. Physical ranges.
            for s in 0..servers {
                let sid = ServerId(s);
                prop_assert!(sim.server_power(sid) >= 0.0);
                let u = sim.server_utilization(sid);
                prop_assert!((0.0..=1.0).contains(&u));
            }
            for v in 0..vms {
                let o = sim.vm(VmId(v));
                prop_assert!(o.delivered <= o.granted + 1e-12);
                prop_assert!(o.granted <= o.demand + 1e-12);
                prop_assert!(o.delivered >= 0.0);
            }
        }
    }

    #[test]
    fn energy_is_sum_of_tick_powers(
        demands in proptest::collection::vec(0.0f64..1.0, 1..6),
        ticks in 1u64..40,
    ) {
        let mut sim = build_sim(&demands, 3);
        let mut total = 0.0;
        for _ in 0..ticks {
            sim.step();
            total += sim.group_power();
        }
        prop_assert!((sim.total_energy() - total).abs() < 1e-6);
    }

    #[test]
    fn delivered_equals_demand_when_unsaturated(
        demands in proptest::collection::vec(0.0f64..0.8, 1..4),
    ) {
        // One VM per server at P0: load = d·1.1 ≤ 0.88 < 1, never saturated.
        let servers = demands.len();
        let mut sim = build_sim(&demands, servers);
        sim.step();
        for (v, &d) in demands.iter().enumerate() {
            prop_assert!((sim.vm(VmId(v)).delivered - d).abs() < 1e-12);
        }
    }
}

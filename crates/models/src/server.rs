use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::pstate::{PState, PStateModel};
use crate::Result;

/// A validated, calibrated model of one server type: an ordered table of
/// P-states with their power and performance curves (paper Figure 5).
///
/// Invariants (checked at construction):
///
/// * at least one P-state;
/// * frequencies strictly decrease from P0 downwards;
/// * all coefficients positive and finite (idle power, power slope,
///   frequency, perf scale);
/// * power is monotone in the state index: at equal utilization a deeper
///   state never draws more power than a shallower one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerModel {
    name: String,
    states: Vec<PStateModel>,
}

impl ServerModel {
    /// Builds a model from a name and a P0-first state table, validating
    /// all invariants.
    pub fn new(name: impl Into<String>, states: Vec<PStateModel>) -> Result<Self> {
        let model = Self {
            name: name.into(),
            states,
        };
        model.validate()?;
        Ok(model)
    }

    /// The paper's **Blade A**: a low-power blade server with five
    /// non-uniformly clustered P-states (1 GHz, 833 MHz, 700 MHz, 600 MHz,
    /// 533 MHz) and a wide power range (≈3× between P0-busy and P4-idle).
    ///
    /// The absolute coefficients are our calibration substitute (see
    /// `DESIGN.md`); the qualitative shape — wide power range, non-uniform
    /// frequency spacing — follows the paper's description.
    pub fn blade_a() -> Self {
        let f0 = 1.0e9;
        let states = vec![
            PStateModel::frequency_proportional(1.0e9, f0, 45.0, 75.0),
            PStateModel::frequency_proportional(833.0e6, f0, 40.0, 68.0),
            PStateModel::frequency_proportional(700.0e6, f0, 35.0, 63.0),
            PStateModel::frequency_proportional(600.0e6, f0, 28.0, 58.0),
            PStateModel::frequency_proportional(533.0e6, f0, 23.0, 55.0),
        ];
        Self::new("Blade A", states).expect("built-in Blade A model is valid")
    }

    /// The paper's **Server B**: an entry-level 2U server with six
    /// relatively uniform P-states (2.6, 2.4, 2.2, 2.0, 1.8, 1.0 GHz),
    /// high idle power, and a narrow relative power range (<2×).
    pub fn server_b() -> Self {
        let f0 = 2.6e9;
        let states = vec![
            PStateModel::frequency_proportional(2.6e9, f0, 90.0, 210.0),
            PStateModel::frequency_proportional(2.4e9, f0, 80.0, 206.0),
            PStateModel::frequency_proportional(2.2e9, f0, 72.0, 202.0),
            PStateModel::frequency_proportional(2.0e9, f0, 65.0, 199.0),
            PStateModel::frequency_proportional(1.8e9, f0, 47.0, 191.0),
            PStateModel::frequency_proportional(1.0e9, f0, 45.0, 190.0),
        ];
        Self::new("Server B", states).expect("built-in Server B model is valid")
    }

    fn validate(&self) -> Result<()> {
        if self.states.is_empty() {
            return Err(ModelError::NoPStates);
        }
        for (i, s) in self.states.iter().enumerate() {
            for (field, value) in [
                ("frequency_hz", s.frequency_hz),
                ("power.slope", s.power.slope),
                ("power.idle", s.power.idle),
                ("perf.scale", s.perf.scale),
            ] {
                if !value.is_finite() || value <= 0.0 {
                    return Err(ModelError::InvalidCoefficient {
                        index: i,
                        field,
                        value,
                    });
                }
            }
            if i > 0 {
                if s.frequency_hz >= self.states[i - 1].frequency_hz {
                    return Err(ModelError::NonDecreasingFrequencies { index: i });
                }
                // Power monotone at both ends of the utilization range is
                // sufficient for affine curves.
                for util in [0.0, 1.0] {
                    if s.power.power(util) > self.states[i - 1].power.power(util) {
                        return Err(ModelError::NonMonotonePower {
                            index: i,
                            utilization: util,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Human-readable name of this server type.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of P-states in the table.
    pub fn num_pstates(&self) -> usize {
        self.states.len()
    }

    /// The deepest (slowest) P-state.
    pub fn deepest(&self) -> PState {
        PState(self.states.len() - 1)
    }

    /// The full state table, P0 first.
    pub fn states(&self) -> &[PStateModel] {
        &self.states
    }

    /// The model for one P-state.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range; states come from this table, so an
    /// out-of-range index is a logic error.
    pub fn state(&self, p: PState) -> &PStateModel {
        &self.states[p.0]
    }

    /// Maximum frequency (P0), in hertz.
    pub fn max_frequency_hz(&self) -> f64 {
        self.states[0].frequency_hz
    }

    /// Minimum frequency (deepest state), in hertz.
    pub fn min_frequency_hz(&self) -> f64 {
        self.states[self.states.len() - 1].frequency_hz
    }

    /// Normalized compute capacity of P-state `p`: `f_p / f_0 ∈ (0, 1]`.
    pub fn capacity(&self, p: PState) -> f64 {
        self.state(p).frequency_hz / self.max_frequency_hz()
    }

    /// Power in watts at P-state `p` and utilization `r ∈ [0, 1]`.
    pub fn power(&self, p: usize, utilization: f64) -> f64 {
        self.states[p].power.power(utilization)
    }

    /// Idle power in watts at P-state `p`.
    pub fn idle_power(&self, p: usize) -> f64 {
        self.states[p].power.idle
    }

    /// Work done at P-state `p` and utilization `r`, relative to max
    /// capacity.
    pub fn perf(&self, p: usize, utilization: f64) -> f64 {
        self.states[p].perf.perf(utilization)
    }

    /// Maximum possible power draw: P0 at 100% utilization. This is the
    /// quantity the paper derates to obtain static power budgets
    /// ("10% off server max").
    pub fn max_power(&self) -> f64 {
        self.states[0].power.max_power()
    }

    /// Minimum power draw while on: deepest P-state at 0% utilization.
    pub fn min_active_power(&self) -> f64 {
        self.states[self.states.len() - 1].power.idle
    }

    /// Quantizes a continuous frequency to the nearest available P-state
    /// (paper Figure 5's `f_q`). Frequencies outside the table clamp to
    /// P0 or the deepest state.
    pub fn quantize(&self, frequency_hz: f64) -> PState {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, s) in self.states.iter().enumerate() {
            let d = (s.frequency_hz - frequency_hz).abs();
            if d < best_dist {
                best_dist = d;
                best = i;
            }
        }
        PState(best)
    }

    /// The P-state one step deeper (slower) than `p`, saturating at the
    /// deepest state.
    pub fn step_down(&self, p: PState) -> PState {
        PState((p.0 + 1).min(self.states.len() - 1))
    }

    /// The P-state one step shallower (faster) than `p`, saturating at P0.
    pub fn step_up(&self, p: PState) -> PState {
        PState(p.0.saturating_sub(1))
    }

    /// The deepest P-state whose *maximum* power does not exceed `watts`,
    /// or `None` if even the deepest state can exceed the budget at full
    /// load. Used by uncoordinated enclosure/group cappers that enforce
    /// budgets by clamping P-states.
    pub fn pstate_for_power_budget(&self, watts: f64) -> Option<PState> {
        self.states
            .iter()
            .position(|s| s.power.max_power() <= watts)
            .map(PState)
    }

    /// Restricts the model to a subset of its P-states (paper §5.3's
    /// "number of P-states" study). Indices must be non-empty, strictly
    /// increasing, and in range; P0 of the subset is the first index given.
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        if indices.is_empty() {
            return Err(ModelError::InvalidSubset {
                reason: "empty index list".to_string(),
            });
        }
        for w in indices.windows(2) {
            if w[1] <= w[0] {
                return Err(ModelError::InvalidSubset {
                    reason: format!("indices must strictly increase, got {indices:?}"),
                });
            }
        }
        if *indices.last().expect("non-empty") >= self.states.len() {
            return Err(ModelError::InvalidSubset {
                reason: format!(
                    "index {} out of range for {} states",
                    indices.last().expect("non-empty"),
                    self.states.len()
                ),
            });
        }
        let states = indices.iter().map(|&i| self.states[i]).collect();
        Self::new(
            format!("{} ({}-state subset)", self.name, indices.len()),
            states,
        )
    }

    /// Keeps only the two extreme P-states (P0 and the deepest state) —
    /// the paper's finding that "having the two extreme P-states can get
    /// behavior close to that when all the P-states are considered".
    pub fn extremes(&self) -> Self {
        if self.states.len() <= 2 {
            return self.clone();
        }
        self.subset(&[0, self.states.len() - 1])
            .expect("extremes of a valid model are valid")
    }

    /// Returns a variant with all idle powers scaled by `factor` (>0),
    /// used for the paper's "different idle power" sensitivity discussion.
    /// Slopes are adjusted so max power at P0 is preserved, keeping power
    /// budgets comparable; deeper states keep their slope ratio.
    pub fn with_idle_scale(&self, factor: f64) -> Result<Self> {
        let mut states = Vec::with_capacity(self.states.len());
        let p0_max = self.states[0].power.max_power();
        for (i, s) in self.states.iter().enumerate() {
            let idle = s.power.idle * factor;
            let slope = if i == 0 {
                p0_max - idle
            } else {
                // Preserve each state's slope ratio relative to P0.
                (s.power.slope / self.states[0].power.slope)
                    * (p0_max - self.states[0].power.idle * factor)
            };
            states.push(PStateModel::new(s.frequency_hz, slope, idle, s.perf.scale));
        }
        Self::new(format!("{} (idle×{factor})", self.name), states)
    }

    /// Power at a *continuous* frequency fraction `phi = f/f_0`
    /// and utilization `r`, linearly interpolating between the bracketing
    /// P-states. This is the continuous envelope Appendix A analyses
    /// ("we ignore the quantization that converts continuous clock
    /// frequencies to discrete P-states").
    pub fn interp_power(&self, phi: f64, utilization: f64) -> f64 {
        let f0 = self.max_frequency_hz();
        let f = (phi * f0).clamp(self.min_frequency_hz(), f0);
        // States are sorted by decreasing frequency.
        let mut hi = 0; // faster state
        let mut lo = self.states.len() - 1; // slower state
        for (i, s) in self.states.iter().enumerate() {
            if s.frequency_hz >= f {
                hi = i;
            }
            if s.frequency_hz <= f {
                lo = i;
                break;
            }
        }
        let (sh, sl) = (&self.states[hi], &self.states[lo]);
        if hi == lo || (sh.frequency_hz - sl.frequency_hz).abs() < f64::EPSILON {
            return sh.power.power(utilization);
        }
        let t = (f - sl.frequency_hz) / (sh.frequency_hz - sl.frequency_hz);
        sl.power.power(utilization) * (1.0 - t) + sh.power.power(utilization) * t
    }

    /// Upper bound `c_max` on the magnitude of the local slope
    /// `|∂pow/∂r_ref|` of the server-power-vs-utilization-target curve,
    /// used to bound the server manager gain `β_loc < 2/c_max`
    /// (paper Appendix A). Power is normalized by [`Self::max_power`].
    ///
    /// When the efficiency controller tracks `r_ref` exactly, the server
    /// runs at frequency fraction `phi = d/r_ref` and utilization
    /// `r = r_ref`. Following Appendix A we evaluate the *continuous*
    /// (unquantized) power envelope and bound the slope numerically over a
    /// demand × r_ref grid covering the SM's operating band
    /// `r_ref ∈ [0.75, 1.5]`.
    pub fn max_capping_slope_normalized(&self) -> f64 {
        let max_pow = self.max_power();
        let phi_min = self.min_frequency_hz() / self.max_frequency_hz();
        let mut c_max: f64 = 0.0;
        let grid = 96;
        for di in 1..=grid {
            let demand = di as f64 / grid as f64;
            let mut prev: Option<(f64, f64)> = None;
            for ri in 0..=grid {
                let r_ref = 0.75 + 0.75 * ri as f64 / grid as f64; // 0.75..=1.5
                let phi = (demand / r_ref).clamp(phi_min, 1.0);
                let r = (demand / phi).min(1.0);
                let pow = self.interp_power(phi, r) / max_pow;
                if let Some((prev_ref, prev_pow)) = prev {
                    let slope = ((pow - prev_pow) / (r_ref - prev_ref)).abs();
                    if slope.is_finite() {
                        c_max = c_max.max(slope);
                    }
                }
                prev = Some((r_ref, pow));
            }
        }
        c_max
    }
}

/// Incremental builder for custom [`ServerModel`]s.
///
/// ```
/// use nps_models::ServerModelBuilder;
///
/// let model = ServerModelBuilder::new("Custom")
///     .pstate(2.0e9, 50.0, 100.0)
///     .pstate(1.0e9, 25.0, 80.0)
///     .build()
///     .unwrap();
/// assert_eq!(model.num_pstates(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ServerModelBuilder {
    name: String,
    raw: Vec<(f64, f64, f64)>,
}

impl ServerModelBuilder {
    /// Starts a builder for a server type called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            raw: Vec::new(),
        }
    }

    /// Appends a P-state (in decreasing frequency order) with the given
    /// power slope and idle power; performance scale is derived as
    /// frequency-proportional against the first state added.
    pub fn pstate(mut self, frequency_hz: f64, power_slope: f64, power_idle: f64) -> Self {
        self.raw.push((frequency_hz, power_slope, power_idle));
        self
    }

    /// Validates and builds the model.
    pub fn build(self) -> Result<ServerModel> {
        let f0 = self.raw.first().map(|s| s.0).unwrap_or(0.0);
        let states = self
            .raw
            .into_iter()
            .map(|(f, slope, idle)| PStateModel::frequency_proportional(f, f0, slope, idle))
            .collect();
        ServerModel::new(self.name, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blade_a_matches_paper_frequencies() {
        let m = ServerModel::blade_a();
        let freqs: Vec<f64> = m.states().iter().map(|s| s.frequency_hz).collect();
        assert_eq!(freqs, vec![1.0e9, 833.0e6, 700.0e6, 600.0e6, 533.0e6]);
        assert_eq!(m.num_pstates(), 5);
    }

    #[test]
    fn server_b_matches_paper_frequencies() {
        let m = ServerModel::server_b();
        let freqs: Vec<f64> = m.states().iter().map(|s| s.frequency_hz).collect();
        assert_eq!(freqs, vec![2.6e9, 2.4e9, 2.2e9, 2.0e9, 1.8e9, 1.0e9]);
        assert_eq!(m.num_pstates(), 6);
    }

    #[test]
    fn blade_a_has_wider_relative_power_range_than_server_b() {
        // Paper §5.1: Blade A has a "higher range" of power control than
        // Server B, which manifests as better DVFS-only savings.
        let a = ServerModel::blade_a();
        let b = ServerModel::server_b();
        let range = |m: &ServerModel| m.max_power() / m.min_active_power();
        assert!(range(&a) > range(&b));
    }

    #[test]
    fn server_b_has_high_idle_fraction() {
        // Paper §7: "current systems with high baseline idle power" make
        // VMC dominate; Server B is our instance of that.
        let b = ServerModel::server_b();
        assert!(b.idle_power(0) / b.max_power() > 0.6);
    }

    #[test]
    fn quantize_picks_nearest_state() {
        let m = ServerModel::blade_a();
        assert_eq!(m.quantize(1.0e9), PState(0));
        assert_eq!(m.quantize(950.0e6), PState(0));
        assert_eq!(m.quantize(760.0e6), PState(2));
        assert_eq!(m.quantize(100.0e6), PState(4));
        assert_eq!(m.quantize(5.0e9), PState(0));
    }

    #[test]
    fn capacity_is_frequency_ratio() {
        let m = ServerModel::blade_a();
        assert!((m.capacity(PState(4)) - 0.533).abs() < 1e-12);
        assert_eq!(m.capacity(PState(0)), 1.0);
    }

    #[test]
    fn step_up_down_saturate() {
        let m = ServerModel::blade_a();
        assert_eq!(m.step_down(PState(4)), PState(4));
        assert_eq!(m.step_down(PState(0)), PState(1));
        assert_eq!(m.step_up(PState(0)), PState(0));
        assert_eq!(m.step_up(PState(3)), PState(2));
    }

    #[test]
    fn pstate_for_power_budget_finds_deepest_fitting_state() {
        let m = ServerModel::blade_a(); // max powers: 120, 108, 98, 86, 78
        assert_eq!(m.pstate_for_power_budget(150.0), Some(PState(0)));
        assert_eq!(m.pstate_for_power_budget(110.0), Some(PState(1)));
        assert_eq!(m.pstate_for_power_budget(90.0), Some(PState(3)));
        assert_eq!(m.pstate_for_power_budget(80.0), Some(PState(4)));
        assert_eq!(m.pstate_for_power_budget(10.0), None);
    }

    #[test]
    fn subset_preserves_selected_states() {
        let m = ServerModel::blade_a();
        let s = m.subset(&[0, 2, 4]).unwrap();
        assert_eq!(s.num_pstates(), 3);
        assert_eq!(s.states()[1].frequency_hz, 700.0e6);
    }

    #[test]
    fn subset_rejects_bad_indices() {
        let m = ServerModel::blade_a();
        assert!(m.subset(&[]).is_err());
        assert!(m.subset(&[0, 0]).is_err());
        assert!(m.subset(&[2, 1]).is_err());
        assert!(m.subset(&[0, 9]).is_err());
    }

    #[test]
    fn extremes_keeps_p0_and_deepest() {
        let m = ServerModel::server_b();
        let e = m.extremes();
        assert_eq!(e.num_pstates(), 2);
        assert_eq!(e.max_frequency_hz(), 2.6e9);
        assert_eq!(e.min_frequency_hz(), 1.0e9);
    }

    #[test]
    fn validation_rejects_non_decreasing_frequencies() {
        let err = ServerModelBuilder::new("bad")
            .pstate(1.0e9, 10.0, 50.0)
            .pstate(1.5e9, 8.0, 40.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::NonDecreasingFrequencies { index: 1 }
        ));
    }

    #[test]
    fn validation_rejects_non_monotone_power() {
        let err = ServerModelBuilder::new("bad")
            .pstate(2.0e9, 10.0, 50.0)
            .pstate(1.0e9, 8.0, 70.0) // deeper state draws MORE at idle
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NonMonotonePower { index: 1, .. }));
    }

    #[test]
    fn validation_rejects_empty_table() {
        assert!(matches!(
            ServerModel::new("empty", vec![]),
            Err(ModelError::NoPStates)
        ));
    }

    #[test]
    fn validation_rejects_nonpositive_coefficients() {
        let err = ServerModelBuilder::new("bad")
            .pstate(2.0e9, 0.0, 50.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCoefficient { .. }));
    }

    #[test]
    fn idle_scale_preserves_p0_max_power() {
        let m = ServerModel::server_b();
        let half = m.with_idle_scale(0.5).unwrap();
        assert!((half.max_power() - m.max_power()).abs() < 1e-9);
        assert!((half.idle_power(0) - m.idle_power(0) * 0.5).abs() < 1e-9);
    }

    #[test]
    fn capping_slope_bound_is_positive_and_finite() {
        for m in [ServerModel::blade_a(), ServerModel::server_b()] {
            let c = m.max_capping_slope_normalized();
            assert!(c.is_finite());
            assert!(c > 0.0, "{}: slope bound {c}", m.name());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let m = ServerModel::blade_a();
        let json = serde_json::to_string(&m).unwrap();
        let back: ServerModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[cfg(test)]
mod interp_tests {
    use super::*;

    #[test]
    fn interp_power_matches_states_at_their_frequencies() {
        let m = ServerModel::blade_a();
        for (i, s) in m.states().iter().enumerate() {
            let phi = s.frequency_hz / m.max_frequency_hz();
            for r in [0.0, 0.5, 1.0] {
                assert!(
                    (m.interp_power(phi, r) - m.power(i, r)).abs() < 1e-9,
                    "state {i} at r={r}"
                );
            }
        }
    }

    #[test]
    fn interp_power_is_between_bracketing_states() {
        let m = ServerModel::server_b();
        let phi = 0.5 * (2.4e9 + 2.2e9) / 2.6e9; // midway between P1 and P2
        let p = m.interp_power(phi, 0.7);
        assert!(p < m.power(1, 0.7) && p > m.power(2, 0.7));
        let mid = 0.5 * (m.power(1, 0.7) + m.power(2, 0.7));
        assert!((p - mid).abs() < 1e-9);
    }

    #[test]
    fn interp_power_clamps_outside_range() {
        let m = ServerModel::blade_a();
        assert!((m.interp_power(2.0, 1.0) - m.power(0, 1.0)).abs() < 1e-9);
        assert!((m.interp_power(0.01, 0.0) - m.power(4, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn capping_slope_admits_paper_base_beta() {
        // The paper's base β_loc = 1 must satisfy β < 2/c_max for both
        // reference systems (Appendix A would otherwise contradict the
        // paper's own base configuration).
        for m in [ServerModel::blade_a(), ServerModel::server_b()] {
            let c_max = m.max_capping_slope_normalized();
            assert!(
                2.0 / c_max > 1.0,
                "{}: bound {} rejects the paper's base gain",
                m.name(),
                2.0 / c_max
            );
        }
    }
}

use std::fmt;

/// Errors produced while constructing or validating server models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A server model must define at least one P-state.
    NoPStates,
    /// P-state frequencies must be strictly decreasing from P0 downwards.
    NonDecreasingFrequencies {
        /// Index of the offending state (the one that is not slower than
        /// its predecessor).
        index: usize,
    },
    /// A frequency, power coefficient, or performance coefficient was not a
    /// positive finite number.
    InvalidCoefficient {
        /// Index of the offending P-state.
        index: usize,
        /// Name of the offending field (e.g. `"frequency_hz"`).
        field: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// Power must be monotone in the P-state index: at equal utilization a
    /// deeper (slower) P-state may not consume more than a shallower one.
    NonMonotonePower {
        /// Index of the offending state (draws more than its predecessor).
        index: usize,
        /// Utilization at which the violation was detected.
        utilization: f64,
    },
    /// A requested P-state subset was empty, out of range, or unsorted.
    InvalidSubset {
        /// Human-readable reason.
        reason: String,
    },
    /// Calibration was given too few samples to fit a line.
    InsufficientSamples {
        /// Number of samples provided.
        provided: usize,
        /// Minimum number required.
        required: usize,
    },
    /// Calibration samples were degenerate (e.g. all at the same
    /// utilization), so no slope can be identified.
    DegenerateSamples,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoPStates => write!(f, "server model has no P-states"),
            ModelError::NonDecreasingFrequencies { index } => write!(
                f,
                "P-state frequencies must strictly decrease: state {index} is \
                 not slower than state {}",
                index - 1
            ),
            ModelError::InvalidCoefficient {
                index,
                field,
                value,
            } => write!(
                f,
                "P-state {index}: field `{field}` must be a positive finite \
                 number, got {value}"
            ),
            ModelError::NonMonotonePower { index, utilization } => write!(
                f,
                "P-state {index} draws more power than P-state {} at \
                 utilization {utilization}",
                index - 1
            ),
            ModelError::InvalidSubset { reason } => {
                write!(f, "invalid P-state subset: {reason}")
            }
            ModelError::InsufficientSamples { provided, required } => write!(
                f,
                "calibration needs at least {required} samples, got {provided}"
            ),
            ModelError::DegenerateSamples => write!(
                f,
                "calibration samples span no utilization range; cannot \
                 identify a slope"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = ModelError::NonDecreasingFrequencies { index: 2 };
        let msg = err.to_string();
        assert!(msg.contains("state 2"));
        assert!(msg.contains("state 1"));
    }

    #[test]
    fn invalid_coefficient_mentions_field_and_value() {
        let err = ModelError::InvalidCoefficient {
            index: 0,
            field: "frequency_hz",
            value: -1.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("frequency_hz"));
        assert!(msg.contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}

//! Power and performance models for data-center servers.
//!
//! This crate provides the modelling substrate of the ASPLOS'08 paper
//! *"No 'Power' Struggles: Coordinated Multi-level Power Management for the
//! Data Center"* (Raghavendra et al.): per-P-state **linear power and
//! performance models** calibrated against hardware (paper Figure 5),
//!
//! ```text
//! pow  = c_p · r + d_p        (watts, r = CPU utilization in [0, 1])
//! perf = a_p · r              (work done, relative to max capacity)
//! ```
//!
//! together with the two reference systems the paper evaluates:
//!
//! * [`ServerModel::blade_a`] — a low-power blade with five non-uniformly
//!   spaced P-states (1 GHz … 533 MHz) and a *wide* power range, and
//! * [`ServerModel::server_b`] — an entry-level 2U server with six nearly
//!   uniform P-states (2.6 GHz … 1.0 GHz), high idle power, and a *narrow*
//!   relative power range.
//!
//! The paper calibrates these models "on the actual hardware by running
//! workloads at different utilization levels and measuring the corresponding
//! power and performance". The [`calibrate`] module reproduces that
//! procedure against a synthetic hardware oracle using least-squares fits.
//!
//! # Quick example
//!
//! ```
//! use nps_models::ServerModel;
//!
//! let blade = ServerModel::blade_a();
//! // Power at the highest P-state, 50% utilization:
//! let watts = blade.power(0, 0.5);
//! assert!(watts > blade.idle_power(0));
//! // The deepest P-state always draws less than P0 at equal utilization:
//! assert!(blade.power(blade.num_pstates() - 1, 0.5) < watts);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
mod error;
mod power;
mod pstate;
mod server;
mod table;

pub use error::ModelError;
pub use power::{LinearPerf, LinearPower};
pub use pstate::{PState, PStateModel};
pub use server::{ServerModel, ServerModelBuilder};
pub use table::ModelTable;

/// Convenient result alias for model construction and validation.
pub type Result<T> = std::result::Result<T, ModelError>;

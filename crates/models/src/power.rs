use serde::{Deserialize, Serialize};

/// A linear power model for one P-state: `pow = slope · r + idle` watts,
/// where `r` is CPU utilization in `[0, 1]`.
///
/// This is the paper's Figure 6 `(Models)` equation `pow = c_p·r + d_p`,
/// with `slope = c_p` (dynamic power swing) and `idle = d_p` (idle power).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearPower {
    /// Dynamic power swing `c_p` in watts per unit utilization.
    pub slope: f64,
    /// Idle power `d_p` in watts (power drawn at zero utilization).
    pub idle: f64,
}

impl LinearPower {
    /// Creates a new linear power model.
    pub const fn new(slope: f64, idle: f64) -> Self {
        Self { slope, idle }
    }

    /// Power in watts at utilization `r`, clamped to `[0, 1]`.
    ///
    /// Clamping mirrors the physical system: a CPU cannot be less than 0%
    /// or more than 100% busy, whatever a noisy sensor reports. A NaN
    /// reading is treated as an idle CPU.
    pub fn power(&self, utilization: f64) -> f64 {
        let r = clamp_utilization(utilization);
        self.slope * r + self.idle
    }

    /// Power at 100% utilization (`slope + idle`).
    pub fn max_power(&self) -> f64 {
        self.slope + self.idle
    }

    /// Inverts the model: the utilization at which this P-state draws
    /// `watts`. Returns `None` if `watts` lies outside `[idle, max_power]`
    /// or the model has no dynamic range.
    pub fn utilization_for_power(&self, watts: f64) -> Option<f64> {
        if self.slope <= 0.0 {
            return None;
        }
        let r = (watts - self.idle) / self.slope;
        if (0.0..=1.0).contains(&r) {
            Some(r)
        } else {
            None
        }
    }
}

/// A linear performance model for one P-state: `perf = scale · r`,
/// where `r` is utilization and `perf` is work done relative to the
/// server's maximum capacity (P0 at 100% utilization = 1.0).
///
/// This is the paper's `perf = a_p·r` with `scale = a_p
/// = f_p / f_0` for frequency-proportional work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearPerf {
    /// Work completed at 100% utilization, relative to max capacity.
    pub scale: f64,
}

impl LinearPerf {
    /// Creates a new linear performance model.
    pub const fn new(scale: f64) -> Self {
        Self { scale }
    }

    /// Work done at utilization `r` (clamped to `[0, 1]`), as a fraction of
    /// the server's maximum capacity.
    pub fn perf(&self, utilization: f64) -> f64 {
        self.scale * clamp_utilization(utilization)
    }
}

/// Clamps a utilization reading into `[0, 1]`, mapping NaN to 0.
pub(crate) fn clamp_utilization(utilization: f64) -> f64 {
    if utilization.is_nan() {
        0.0
    } else {
        utilization.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_affine_in_utilization() {
        let m = LinearPower::new(45.0, 75.0);
        assert_eq!(m.power(0.0), 75.0);
        assert_eq!(m.power(1.0), 120.0);
        assert!((m.power(0.5) - 97.5).abs() < 1e-12);
    }

    #[test]
    fn power_clamps_out_of_range_utilization() {
        let m = LinearPower::new(45.0, 75.0);
        assert_eq!(m.power(-0.3), m.power(0.0));
        assert_eq!(m.power(1.7), m.power(1.0));
        assert!(!m.power(f64::NAN).is_nan());
    }

    #[test]
    fn max_power_matches_full_utilization() {
        let m = LinearPower::new(30.0, 155.0);
        assert_eq!(m.max_power(), m.power(1.0));
    }

    #[test]
    fn utilization_for_power_inverts_power() {
        let m = LinearPower::new(45.0, 75.0);
        for r in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = m.power(r);
            let back = m.utilization_for_power(w).unwrap();
            assert!((back - r).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_for_power_rejects_out_of_range() {
        let m = LinearPower::new(45.0, 75.0);
        assert_eq!(m.utilization_for_power(50.0), None); // below idle
        assert_eq!(m.utilization_for_power(500.0), None); // above max
    }

    #[test]
    fn utilization_for_power_rejects_flat_model() {
        let m = LinearPower::new(0.0, 75.0);
        assert_eq!(m.utilization_for_power(75.0), None);
    }

    #[test]
    fn perf_scales_with_utilization() {
        let m = LinearPerf::new(0.533);
        assert_eq!(m.perf(0.0), 0.0);
        assert!((m.perf(1.0) - 0.533).abs() < 1e-12);
        assert!((m.perf(0.5) - 0.2665).abs() < 1e-12);
    }

    #[test]
    fn perf_clamps_utilization() {
        let m = LinearPerf::new(1.0);
        assert_eq!(m.perf(2.0), 1.0);
        assert_eq!(m.perf(-1.0), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = LinearPower::new(45.0, 75.0);
        let json = serde_json::to_string(&m).unwrap();
        let back: LinearPower = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

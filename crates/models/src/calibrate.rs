//! Model calibration against hardware measurements.
//!
//! The paper (§4.1): *"For each system, the models are calibrated on the
//! actual hardware by running workloads at different utilization levels and
//! measuring the corresponding power and performance. We then use linear
//! models obtained through curve-fitting."*
//!
//! We reproduce that procedure: a [`PowerMeasurable`] abstraction stands in
//! for "the actual hardware" (in this repository, a noisy
//! [`SyntheticHardware`] wraps a ground-truth [`ServerModel`]), and
//! [`calibrate`] drives each P-state across a utilization sweep, collects
//! `(utilization, watts, perf)` samples, and least-squares-fits the linear
//! `pow = c_p·r + d_p` / `perf = a_p·r` models.

use crate::error::ModelError;
use crate::pstate::{PState, PStateModel};
use crate::server::ServerModel;
use crate::Result;

/// One calibration measurement: the server was loaded to `utilization` at
/// P-state `pstate` and drew `watts` while completing `perf` work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// P-state the measurement was taken at.
    pub pstate: PState,
    /// Offered CPU utilization in `[0, 1]`.
    pub utilization: f64,
    /// Measured wall power in watts.
    pub watts: f64,
    /// Measured work completed, relative to max capacity.
    pub perf: f64,
}

/// Anything that can be measured like real hardware: set a P-state, offer a
/// load level, read back power and performance.
pub trait PowerMeasurable {
    /// Number of P-states the hardware exposes.
    fn num_pstates(&self) -> usize;
    /// Clock frequency of P-state `p` in hertz.
    fn frequency_hz(&self, p: PState) -> f64;
    /// Runs the hardware at P-state `p` and offered utilization `r`,
    /// returning measured `(watts, perf)`.
    fn measure(&mut self, p: PState, utilization: f64) -> (f64, f64);
}

/// A synthetic "actual hardware" built from a ground-truth [`ServerModel`]
/// plus multiplicative measurement noise, for exercising the calibration
/// pipeline end to end without a lab.
#[derive(Debug, Clone)]
pub struct SyntheticHardware<R> {
    truth: ServerModel,
    noise_frac: f64,
    rng: R,
}

impl<R: FnMut() -> f64> SyntheticHardware<R> {
    /// Wraps `truth` with `noise_frac` relative measurement noise.
    /// `rng` must return values uniform in `[-1, 1)` (e.g. from `rand`);
    /// keeping the trait surface as a closure avoids coupling the public
    /// API to a specific RNG crate.
    pub fn new(truth: ServerModel, noise_frac: f64, rng: R) -> Self {
        Self {
            truth,
            noise_frac,
            rng,
        }
    }
}

impl<R: FnMut() -> f64> PowerMeasurable for SyntheticHardware<R> {
    fn num_pstates(&self) -> usize {
        self.truth.num_pstates()
    }

    fn frequency_hz(&self, p: PState) -> f64 {
        self.truth.state(p).frequency_hz
    }

    fn measure(&mut self, p: PState, utilization: f64) -> (f64, f64) {
        let noise = 1.0 + self.noise_frac * (self.rng)();
        let watts = self.truth.power(p.0, utilization) * noise;
        let perf = self.truth.perf(p.0, utilization);
        (watts, perf)
    }
}

/// Least-squares fit of `y = slope·x + intercept`.
///
/// Returns an error with fewer than two samples or zero x-variance.
pub fn fit_line(points: &[(f64, f64)]) -> Result<(f64, f64)> {
    if points.len() < 2 {
        return Err(ModelError::InsufficientSamples {
            provided: points.len(),
            required: 2,
        });
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx <= f64::EPSILON {
        return Err(ModelError::DegenerateSamples);
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    Ok((slope, intercept))
}

/// Runs the paper's calibration procedure: sweeps every P-state of `hw`
/// across `levels` utilization levels, measures power and performance, and
/// fits the per-state linear models.
pub fn calibrate<H: PowerMeasurable>(
    hw: &mut H,
    name: impl Into<String>,
    levels: usize,
) -> Result<ServerModel> {
    let levels = levels.max(2);
    let mut states = Vec::with_capacity(hw.num_pstates());
    for pi in 0..hw.num_pstates() {
        let p = PState(pi);
        let mut pow_pts = Vec::with_capacity(levels);
        let mut perf_pts = Vec::with_capacity(levels);
        for li in 0..levels {
            let r = li as f64 / (levels - 1) as f64;
            let (watts, perf) = hw.measure(p, r);
            pow_pts.push((r, watts));
            perf_pts.push((r, perf));
        }
        let (c_p, d_p) = fit_line(&pow_pts)?;
        let (a_p, _) = fit_line(&perf_pts)?;
        states.push(PStateModel::new(hw.frequency_hz(p), c_p, d_p, a_p));
    }
    ServerModel::new(name, states)
}

/// Collects the raw calibration samples (for plotting paper Figure 5).
pub fn sweep_samples<H: PowerMeasurable>(hw: &mut H, levels: usize) -> Vec<Sample> {
    let levels = levels.max(2);
    let mut out = Vec::with_capacity(hw.num_pstates() * levels);
    for pi in 0..hw.num_pstates() {
        let p = PState(pi);
        for li in 0..levels {
            let r = li as f64 / (levels - 1) as f64;
            let (watts, perf) = hw.measure(p, r);
            out.push(Sample {
                pstate: p,
                utilization: r,
                watts,
                perf,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_noise(truth: ServerModel) -> SyntheticHardware<impl FnMut() -> f64> {
        SyntheticHardware::new(truth, 0.0, || 0.0)
    }

    #[test]
    fn fit_line_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (slope, intercept) = fit_line(&pts).unwrap();
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_rejects_too_few_points() {
        assert!(matches!(
            fit_line(&[(1.0, 2.0)]),
            Err(ModelError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn fit_line_rejects_degenerate_x() {
        assert!(matches!(
            fit_line(&[(1.0, 2.0), (1.0, 3.0)]),
            Err(ModelError::DegenerateSamples)
        ));
    }

    #[test]
    fn calibration_recovers_noiseless_blade_a_exactly() {
        let truth = ServerModel::blade_a();
        let mut hw = no_noise(truth.clone());
        let fitted = calibrate(&mut hw, "Blade A (calibrated)", 11).unwrap();
        for (t, f) in truth.states().iter().zip(fitted.states()) {
            assert!((t.power.slope - f.power.slope).abs() < 1e-9);
            assert!((t.power.idle - f.power.idle).abs() < 1e-9);
            assert!((t.perf.scale - f.perf.scale).abs() < 1e-9);
        }
    }

    #[test]
    fn calibration_is_robust_to_noise() {
        // A crude deterministic pseudo-random sequence in [-1, 1).
        let mut x = 0.5_f64;
        let rng = move || {
            x = (x * 9301.0 + 49297.0) % 233280.0;
            (x / 233280.0) * 2.0 - 1.0
        };
        let truth = ServerModel::server_b();
        let mut hw = SyntheticHardware::new(truth.clone(), 0.03, rng);
        let fitted = calibrate(&mut hw, "Server B (calibrated)", 101).unwrap();
        for (t, f) in truth.states().iter().zip(fitted.states()) {
            let slope_err = (t.power.slope - f.power.slope).abs() / t.power.slope;
            let idle_err = (t.power.idle - f.power.idle).abs() / t.power.idle;
            assert!(slope_err < 0.25, "slope err {slope_err}");
            assert!(idle_err < 0.05, "idle err {idle_err}");
        }
    }

    #[test]
    fn sweep_samples_covers_all_states_and_levels() {
        let mut hw = no_noise(ServerModel::blade_a());
        let samples = sweep_samples(&mut hw, 5);
        assert_eq!(samples.len(), 5 * 5);
        assert!(samples.iter().any(|s| s.pstate == PState(4)));
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(&s.utilization)));
    }
}

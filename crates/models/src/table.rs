//! Batched, memoized model lookups for the simulation hot path.
//!
//! [`ModelTable`] flattens a fleet's [`ServerModel`]s into contiguous
//! per-coefficient arrays (a CSR-style structure-of-arrays layout): one
//! offset table plus flat `frequency / slope / idle / capacity / perf`
//! vectors indexed by `offsets[server] + pstate`. Hot loops touching
//! every server each tick then read sequentially through a handful of
//! cache-resident arrays instead of chasing one `Vec<PStateModel>`
//! allocation per server.
//!
//! Every accessor performs the *same floating-point operations in the
//! same order* as the corresponding [`ServerModel`] method, so switching
//! a caller from per-object lookups to the table is bit-identical —
//! memoized quantities (capacity ratios, max power) are computed once at
//! construction with the identical expression the scalar path evaluates
//! per call.

use crate::power::clamp_utilization;
use crate::pstate::PState;
use crate::server::ServerModel;

/// Flattened structure-of-arrays view of a fleet's server models.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTable {
    /// `offsets[i]..offsets[i + 1]` is server `i`'s P-state range in the
    /// flat arrays; `offsets.len() == num_servers + 1`.
    offsets: Vec<usize>,
    /// Per-(server, P-state) clock frequency, Hz.
    freq_hz: Vec<f64>,
    /// Per-(server, P-state) dynamic power swing `c_p`, watts.
    slope: Vec<f64>,
    /// Per-(server, P-state) idle power `d_p`, watts.
    idle: Vec<f64>,
    /// Per-(server, P-state) normalized capacity `f_p / f_0`.
    capacity: Vec<f64>,
    /// Per-(server, P-state) performance scale `a_p`.
    perf_scale: Vec<f64>,
    /// Per-server maximum power (P0 at 100% utilization), watts.
    max_power: Vec<f64>,
}

impl ModelTable {
    /// Flattens one model per server into the table.
    pub fn from_models(models: &[ServerModel]) -> Self {
        let total: usize = models.iter().map(|m| m.num_pstates()).sum();
        let mut offsets = Vec::with_capacity(models.len() + 1);
        let mut freq_hz = Vec::with_capacity(total);
        let mut slope = Vec::with_capacity(total);
        let mut idle = Vec::with_capacity(total);
        let mut capacity = Vec::with_capacity(total);
        let mut perf_scale = Vec::with_capacity(total);
        let mut max_power = Vec::with_capacity(models.len());
        offsets.push(0);
        for m in models {
            let f0 = m.max_frequency_hz();
            for s in m.states() {
                freq_hz.push(s.frequency_hz);
                slope.push(s.power.slope);
                idle.push(s.power.idle);
                // Identical expression to `ServerModel::capacity`.
                capacity.push(s.frequency_hz / f0);
                perf_scale.push(s.perf.scale);
            }
            offsets.push(freq_hz.len());
            max_power.push(m.max_power());
        }
        Self {
            offsets,
            freq_hz,
            slope,
            idle,
            capacity,
            perf_scale,
            max_power,
        }
    }

    /// Builds a table where every server uses the same model.
    pub fn uniform(model: &ServerModel, num_servers: usize) -> Self {
        let models = vec![model.clone(); num_servers];
        Self::from_models(&models)
    }

    /// Number of servers covered by the table.
    pub fn num_servers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the table covers no servers.
    pub fn is_empty(&self) -> bool {
        self.num_servers() == 0
    }

    /// Number of P-states of server `i`.
    #[inline]
    pub fn num_pstates(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The deepest (slowest) P-state of server `i`.
    #[inline]
    pub fn deepest(&self, i: usize) -> PState {
        PState(self.num_pstates(i) - 1)
    }

    #[inline]
    fn at(&self, i: usize, p: usize) -> usize {
        let off = self.offsets[i] + p;
        debug_assert!(off < self.offsets[i + 1], "P-state {p} out of range");
        off
    }

    /// Clock frequency of server `i` at P-state `p`, Hz.
    #[inline]
    pub fn frequency_hz(&self, i: usize, p: usize) -> f64 {
        self.freq_hz[self.at(i, p)]
    }

    /// Maximum frequency (P0) of server `i`, Hz.
    #[inline]
    pub fn max_frequency_hz(&self, i: usize) -> f64 {
        self.freq_hz[self.offsets[i]]
    }

    /// Minimum frequency (deepest state) of server `i`, Hz.
    #[inline]
    pub fn min_frequency_hz(&self, i: usize) -> f64 {
        self.freq_hz[self.offsets[i + 1] - 1]
    }

    /// Normalized capacity of server `i` at P-state `p` (memoized
    /// `f_p / f_0`, bit-identical to [`ServerModel::capacity`]).
    #[inline]
    pub fn capacity(&self, i: usize, p: usize) -> f64 {
        self.capacity[self.at(i, p)]
    }

    /// Power of server `i` at P-state `p` and utilization `r` — the same
    /// `slope · clamp(r) + idle` evaluation as [`ServerModel::power`].
    #[inline]
    pub fn power(&self, i: usize, p: usize, utilization: f64) -> f64 {
        let off = self.at(i, p);
        self.slope[off] * clamp_utilization(utilization) + self.idle[off]
    }

    /// Idle power of server `i` at P-state `p`, watts.
    #[inline]
    pub fn idle_power(&self, i: usize, p: usize) -> f64 {
        self.idle[self.at(i, p)]
    }

    /// Work done by server `i` at P-state `p` and utilization `r`,
    /// relative to max capacity (matches [`ServerModel::perf`]).
    #[inline]
    pub fn perf(&self, i: usize, p: usize, utilization: f64) -> f64 {
        self.perf_scale[self.at(i, p)] * clamp_utilization(utilization)
    }

    /// Maximum power of server `i` (P0 at 100% utilization), watts.
    #[inline]
    pub fn max_power(&self, i: usize) -> f64 {
        self.max_power[i]
    }

    /// Quantizes a continuous frequency to server `i`'s nearest P-state —
    /// the same nearest-distance scan as [`ServerModel::quantize`].
    #[inline]
    pub fn quantize(&self, i: usize, frequency_hz: f64) -> PState {
        let states = &self.freq_hz[self.offsets[i]..self.offsets[i + 1]];
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (k, &f) in states.iter().enumerate() {
            let d = (f - frequency_hz).abs();
            if d < best_dist {
                best_dist = d;
                best = k;
            }
        }
        PState(best)
    }

    /// The P-state one step deeper (slower) than `p` on server `i`,
    /// saturating at the deepest state.
    #[inline]
    pub fn step_down(&self, i: usize, p: PState) -> PState {
        PState((p.index() + 1).min(self.num_pstates(i) - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<ServerModel> {
        vec![
            ServerModel::blade_a(),
            ServerModel::server_b(),
            ServerModel::blade_a().extremes(),
        ]
    }

    #[test]
    fn table_matches_scalar_models_bitwise() {
        let models = fleet();
        let table = ModelTable::from_models(&models);
        assert_eq!(table.num_servers(), models.len());
        for (i, m) in models.iter().enumerate() {
            assert_eq!(table.num_pstates(i), m.num_pstates());
            assert_eq!(table.deepest(i), m.deepest());
            assert_eq!(table.max_power(i), m.max_power());
            assert_eq!(table.max_frequency_hz(i), m.max_frequency_hz());
            assert_eq!(table.min_frequency_hz(i), m.min_frequency_hz());
            for p in 0..m.num_pstates() {
                assert_eq!(table.frequency_hz(i, p), m.state(PState(p)).frequency_hz);
                assert_eq!(table.capacity(i, p), m.capacity(PState(p)));
                assert_eq!(table.idle_power(i, p), m.idle_power(p));
                for r in [-0.5, 0.0, 0.3, 0.77, 1.0, 1.5, f64::NAN] {
                    assert_eq!(table.power(i, p, r), m.power(p, r), "power i={i} p={p}");
                    assert_eq!(table.perf(i, p, r), m.perf(p, r), "perf i={i} p={p}");
                }
                assert_eq!(table.step_down(i, PState(p)), m.step_down(PState(p)));
            }
            for f in [0.0, 4.0e8, 5.5e8, 7.6e8, 1.0e9, 2.3e9, 9.9e9] {
                assert_eq!(table.quantize(i, f), m.quantize(f), "quantize i={i} f={f}");
            }
        }
    }

    #[test]
    fn uniform_table_replicates_one_model() {
        let m = ServerModel::server_b();
        let table = ModelTable::uniform(&m, 4);
        assert_eq!(table.num_servers(), 4);
        for i in 0..4 {
            assert_eq!(table.num_pstates(i), m.num_pstates());
            assert_eq!(table.power(i, 2, 0.5), m.power(2, 0.5));
        }
    }

    #[test]
    fn empty_table_is_empty() {
        let table = ModelTable::from_models(&[]);
        assert!(table.is_empty());
        assert_eq!(table.num_servers(), 0);
    }
}

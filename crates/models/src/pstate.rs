use serde::{Deserialize, Serialize};

use crate::power::{LinearPerf, LinearPower};

/// Identifier of a P-state within a [`crate::ServerModel`].
///
/// `PState(0)` is the highest-frequency (fastest, most power-hungry) state,
/// matching the ACPI convention the paper uses; larger indices are deeper
/// (slower) states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PState(pub usize);

impl PState {
    /// The highest-performance state, `P0`.
    pub const P0: PState = PState(0);

    /// Returns the raw index of this state.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for PState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The calibrated models for a single P-state of a server: its clock
/// frequency plus the linear power and performance curves measured at that
/// frequency (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PStateModel {
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Linear power model `pow = c_p·r + d_p`.
    pub power: LinearPower,
    /// Linear performance model `perf = a_p·r`.
    pub perf: LinearPerf,
}

impl PStateModel {
    /// Creates a P-state model from frequency and coefficient values.
    ///
    /// `power_slope`/`power_idle` are `c_p`/`d_p` in watts; `perf_scale` is
    /// `a_p`, the work done at 100% utilization relative to P0 capacity.
    pub fn new(frequency_hz: f64, power_slope: f64, power_idle: f64, perf_scale: f64) -> Self {
        Self {
            frequency_hz,
            power: LinearPower::new(power_slope, power_idle),
            perf: LinearPerf::new(perf_scale),
        }
    }

    /// A frequency-proportional P-state: performance scale is derived as
    /// `frequency_hz / max_frequency_hz`.
    pub fn frequency_proportional(
        frequency_hz: f64,
        max_frequency_hz: f64,
        power_slope: f64,
        power_idle: f64,
    ) -> Self {
        Self::new(
            frequency_hz,
            power_slope,
            power_idle,
            frequency_hz / max_frequency_hz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pstate_display_matches_acpi_convention() {
        assert_eq!(PState(0).to_string(), "P0");
        assert_eq!(PState(4).to_string(), "P4");
    }

    #[test]
    fn pstate_ordering_is_by_index() {
        assert!(PState::P0 < PState(1));
        assert!(PState(3) < PState(4));
    }

    #[test]
    fn frequency_proportional_derives_perf_scale() {
        let s = PStateModel::frequency_proportional(533e6, 1e9, 20.0, 40.0);
        assert!((s.perf.scale - 0.533).abs() < 1e-12);
        assert_eq!(s.power.idle, 40.0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = PStateModel::new(1e9, 45.0, 75.0, 1.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: PStateModel = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

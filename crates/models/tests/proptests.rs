//! Property-based tests for the model invariants the controllers rely on
//! (paper §4.1: "these models also highlight the monotonicity in variation
//! ... that are key assumptions to the design of the controllers").

use nps_models::{calibrate, PState, ServerModel, ServerModelBuilder};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ServerModel> {
    // Build random valid models: decreasing frequencies, decreasing power
    // curves.
    (2usize..8, 0.1f64..1.0, 10.0f64..100.0, 20.0f64..300.0).prop_map(
        |(n, freq_ratio, slope0, idle0)| {
            let f0 = 3.0e9;
            let fmin = f0 * freq_ratio.max(0.05);
            let mut b = ServerModelBuilder::new("random");
            for i in 0..n {
                let t = i as f64 / (n - 1) as f64;
                let f = f0 + (fmin - f0) * t;
                // Scale power coefficients down with frequency so the
                // monotonicity invariant holds.
                let scale = 0.3 + 0.7 * (1.0 - t);
                b = b.pstate(f, slope0 * scale, idle0 * scale);
            }
            b.build().expect("constructed to be valid")
        },
    )
}

proptest! {
    #[test]
    fn power_monotone_in_utilization(m in arb_model(), p in 0usize..8, r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
        let p = p % m.num_pstates();
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(m.power(p, lo) <= m.power(p, hi) + 1e-12);
    }

    #[test]
    fn power_monotone_in_pstate_depth(m in arb_model(), r in 0.0f64..1.0) {
        for p in 1..m.num_pstates() {
            prop_assert!(m.power(p, r) <= m.power(p - 1, r) + 1e-12);
        }
    }

    #[test]
    fn perf_monotone_in_pstate_speed(m in arb_model(), r in 0.0f64..1.0) {
        for p in 1..m.num_pstates() {
            prop_assert!(m.perf(p, r) <= m.perf(p - 1, r) + 1e-12);
        }
    }

    #[test]
    fn quantize_returns_valid_state_and_is_idempotent(m in arb_model(), f in 1.0e8f64..5.0e9) {
        let p = m.quantize(f);
        prop_assert!(p.index() < m.num_pstates());
        let fq = m.state(p).frequency_hz;
        prop_assert_eq!(m.quantize(fq), p);
    }

    #[test]
    fn quantize_is_nearest(m in arb_model(), f in 1.0e8f64..5.0e9) {
        let p = m.quantize(f);
        let chosen = (m.state(p).frequency_hz - f).abs();
        for s in m.states() {
            prop_assert!(chosen <= (s.frequency_hz - f).abs() + 1e-6);
        }
    }

    #[test]
    fn capacity_in_unit_interval(m in arb_model()) {
        for i in 0..m.num_pstates() {
            let c = m.capacity(PState(i));
            prop_assert!(c > 0.0 && c <= 1.0);
        }
        prop_assert_eq!(m.capacity(PState(0)), 1.0);
    }

    #[test]
    fn calibration_recovers_random_models(m in arb_model()) {
        let mut hw = calibrate::SyntheticHardware::new(m.clone(), 0.0, || 0.0);
        let fitted = calibrate::calibrate(&mut hw, "fit", 9).unwrap();
        for (t, f) in m.states().iter().zip(fitted.states()) {
            prop_assert!((t.power.slope - f.power.slope).abs() < 1e-6);
            prop_assert!((t.power.idle - f.power.idle).abs() < 1e-6);
        }
    }

    #[test]
    fn pstate_for_power_budget_respects_budget(m in arb_model(), frac in 0.0f64..1.5) {
        let budget = m.max_power() * frac;
        if let Some(p) = m.pstate_for_power_budget(budget) {
            prop_assert!(m.power(p.index(), 1.0) <= budget + 1e-9);
            // It is the shallowest (fastest) state that fits.
            if p.index() > 0 {
                prop_assert!(m.power(p.index() - 1, 1.0) > budget);
            }
        } else {
            // No state fits: even the deepest exceeds the budget.
            prop_assert!(m.min_active_power() + m.states().last().unwrap().power.slope > budget);
        }
    }

    #[test]
    fn subset_preserves_power_curves(m in arb_model()) {
        let e = m.extremes();
        prop_assert!(e.num_pstates() <= m.num_pstates().min(2));
        prop_assert_eq!(e.max_power(), m.max_power());
        prop_assert_eq!(e.min_active_power(), m.min_active_power());
    }
}

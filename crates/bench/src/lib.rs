//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary regenerates one table or figure of the paper's evaluation
//! (see `DESIGN.md` §4 for the index). Run them as:
//!
//! ```sh
//! cargo run --release -p nps-bench --bin fig7
//! ```
//!
//! Environment knobs:
//!
//! * `NPS_HORIZON` — simulation length in ticks (default 4 000 ≈ two
//!   diurnal cycles, eight VMC epochs);
//! * `NPS_SEED` — trace-corpus seed (default 42);
//! * `NPS_THREADS` — worker threads for the rack-sharded parallel phase
//!   (default 1; results are bit-identical at any value);
//! * `NPS_JSON_OUT_DIR` — when set, binaries also write their tables as
//!   JSON artifacts into this directory (created on demand); CI uploads
//!   them from the smoke job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nps_core::{run_experiment, CoordinationMode, ExperimentConfig, Scenario, SystemKind};
use nps_metrics::Comparison;
use nps_traces::Mix;

/// Simulation horizon for figure regeneration (`NPS_HORIZON`, default
/// 4 000 ticks).
pub fn horizon() -> u64 {
    std::env::var("NPS_HORIZON")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000)
}

/// Trace-corpus seed (`NPS_SEED`, default 42).
pub fn seed() -> u64 {
    std::env::var("NPS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Worker threads for each run's rack-sharded parallel phase
/// (`NPS_THREADS`, default 1 — the sequential path). Results are
/// bit-identical at every value; this only moves wall-clock.
pub fn threads() -> usize {
    std::env::var("NPS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// A paper-standard scenario at the harness horizon/seed/threads.
pub fn scenario(sys: SystemKind, mix: Mix, mode: CoordinationMode) -> Scenario {
    Scenario::paper(sys, mix, mode)
        .horizon(horizon())
        .seed(seed())
        .threads(threads())
}

/// Runs a configuration and returns the baseline-normalized comparison.
pub fn run(cfg: &ExperimentConfig) -> Comparison {
    run_experiment(cfg).comparison
}

/// Runs many configurations in parallel (deterministic results, input
/// order preserved) and returns their comparisons.
///
/// The figure binaries need every row, so a configuration that fails
/// inside the sweep aborts with the sweep's labeled error.
pub fn run_all(cfgs: &[ExperimentConfig]) -> Vec<Comparison> {
    nps_core::run_sweep(cfgs, 0)
        .into_iter()
        .map(|r| match r {
            Ok(result) => result.comparison,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// The JSON artifact directory (`NPS_JSON_OUT_DIR`), if configured.
pub fn json_out_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("NPS_JSON_OUT_DIR").map(std::path::PathBuf::from)
}

/// Serializes `value` to `<NPS_JSON_OUT_DIR>/<name>.json` when the knob
/// is set (no-op otherwise). Returns the path written.
pub fn write_json_artifact<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> Option<std::path::PathBuf> {
    let dir = json_out_dir()?;
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("bench artifacts serialize infallibly");
    match std::fs::write(&path, json) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Prints the standard banner for a regenerated artifact.
pub fn banner(artifact: &str, paper_ref: &str) {
    println!("{artifact}");
    println!("{}", "=".repeat(artifact.len()));
    println!(
        "(reproduces {paper_ref}; horizon {} ticks, seed {})",
        horizon(),
        seed()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(horizon() >= 1);
        let _ = seed();
    }

    #[test]
    fn scenario_builder_uses_harness_knobs() {
        let cfg = scenario(SystemKind::BladeA, Mix::L60, CoordinationMode::Coordinated)
            .horizon(50)
            .build();
        assert_eq!(cfg.horizon, 50);
    }
}

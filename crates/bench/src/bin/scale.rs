//! **Scaling sweep** — epoch cost of the batched structure-of-arrays
//! engine from 48 to 1 536 servers (multi-rack topologies), reported as
//! wall-clock per tick and per server-tick, at worker-thread counts 1, 2
//! and 4. With `NPS_JSON_OUT_DIR` set, the sweep is written as
//! `BENCH_scale.json` (CI's perf-smoke artifact), one row per
//! (fleet, size, thread count).
//!
//! Each point uses `Scenario::multi_rack`: `n/48` racks of 2 enclosures
//! × 16 blades plus `n/3` standalone servers, driven by the enterprise
//! trace corpus tiled across sites, under the coordinated architecture.
//! Parallel execution is bit-identical to sequential, so the thread
//! sweep isolates pure throughput: every row at a given fleet size
//! reports the same `mean_power_w`.
//!
//! Two fleets are swept. The `uniform` fleet uses the paper's default
//! controller intervals (the VMC fires rarely, if at all, inside short
//! CI horizons). The `vmc_heavy` fleet (512 servers = 512 VMs, far
//! beyond the 64-VM sharding threshold) tightens every interval so VMC
//! arbitration epochs land every 50 ticks — exercising the sharded
//! demand accumulators and the fixed-shape tree reductions on the
//! arbitration path. CI's perf-smoke gate asserts the 4-vs-1 speedup on
//! both the largest uniform fleet and the VMC-heavy fleet.
//!
//! Each row also reports `global_phase_fraction` — the share of run
//! wall-clock spent *outside* the sharded worker phase (GM arbitration,
//! bus replay, reductions — the Amdahl ceiling on thread scaling;
//! sequential rows report 1.0 by construction) — and
//! `arbitration_phase_fraction`, the share spent inside VMC arbitration
//! epochs (demand estimation + placement planning + plan application).

use nps_bench::{banner, horizon, seed, write_json_artifact};
use nps_core::{CoordinationMode, Intervals, Runner, Scenario, SystemKind};
use nps_metrics::Table;
use serde::Serialize;
use std::time::Instant;

/// Server counts swept; 48 is one rack + standalone, then ×2 up to 1 536.
const SIZES: [usize; 6] = [48, 96, 192, 384, 768, 1536];

/// Worker-thread counts swept at every fleet size (CI checks the 4-vs-1
/// speedup on the largest fleet and on the VMC-heavy fleet).
const THREADS: [usize; 3] = [1, 2, 4];

/// The VMC-heavy fleet's size: 512 VMs (one per server), well past the
/// 64-VM threshold where the VMC demand pass shards over the pool.
const VMC_HEAVY_SIZE: usize = 512;

/// The VMC-heavy fleet's controller intervals: arbitration every 50
/// ticks, so even CI's 200-tick horizon sees several VMC epochs.
const VMC_HEAVY_INTERVALS: Intervals = Intervals {
    ec: 1,
    sm: 5,
    em: 10,
    gm: 25,
    vmc: 50,
};

#[derive(Serialize)]
struct ScaleRow {
    /// `"uniform"` (default intervals) or `"vmc_heavy"` (tight VMC
    /// period on a ≥64-VM fleet); CI's speedup gates select on this.
    fleet: &'static str,
    servers: usize,
    racks: usize,
    enclosures_per_rack: usize,
    blades_per_enclosure: usize,
    standalone: usize,
    threads: usize,
    horizon: u64,
    build_ms: f64,
    run_ms: f64,
    us_per_tick: f64,
    ns_per_server_tick: f64,
    /// Fraction of run wall-clock spent in the sequential global phase
    /// (1.0 minus the worker pool's busy time over total run time).
    global_phase_fraction: f64,
    /// Fraction of run wall-clock spent inside VMC arbitration epochs
    /// (0.0 when the VMC never fires within the horizon).
    arbitration_phase_fraction: f64,
    /// Shards pulled from a busy peer's deque by an idle worker over the
    /// whole run (0 for sequential rows and perfectly balanced fleets).
    steals: u64,
    mean_power_w: f64,
}

/// Builds and runs one (fleet, size, threads) point.
fn run_row(
    fleet: &'static str,
    n: usize,
    threads: usize,
    intervals: Option<Intervals>,
    h: u64,
) -> ScaleRow {
    let (racks, enclosures_per_rack, blades) = (n / 48, 2, 16);
    let standalone = n - racks * enclosures_per_rack * blades;
    let mut scenario = Scenario::multi_rack(
        SystemKind::BladeA,
        CoordinationMode::Coordinated,
        racks,
        enclosures_per_rack,
        blades,
        standalone,
    )
    .horizon(h)
    .seed(seed())
    .threads(threads);
    if let Some(iv) = intervals {
        scenario = scenario.intervals(iv);
    }
    let cfg = scenario.build();

    let t0 = Instant::now();
    let mut runner = Runner::new(&cfg);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let stats = runner.run_to_horizon();
    let run_ns = t1.elapsed().as_nanos() as f64;
    let run_ms = run_ns / 1e6;
    let global_phase_fraction = if run_ns > 0.0 {
        (1.0 - runner.parallel_nanos() as f64 / run_ns).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let arbitration_phase_fraction = if run_ns > 0.0 {
        (runner.arbitration_nanos() as f64 / run_ns).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let steals = runner.steal_count();

    let ticks = stats.ticks.max(1) as f64;
    ScaleRow {
        fleet,
        servers: n,
        racks,
        enclosures_per_rack,
        blades_per_enclosure: blades,
        standalone,
        threads,
        horizon: stats.ticks,
        build_ms,
        run_ms,
        us_per_tick: run_ms * 1e3 / ticks,
        ns_per_server_tick: run_ms * 1e6 / (ticks * n as f64),
        global_phase_fraction,
        arbitration_phase_fraction,
        steals,
        mean_power_w: stats.mean_power(),
    }
}

fn main() {
    banner(
        "Scaling sweep: batched SoA engine, 48 -> 1536 servers x 1/2/4 threads",
        "DESIGN.md \u{a7}8, \u{a7}10, \u{a7}13; multi-rack extension of the paper's 180-server testbed",
    );
    let h = horizon();
    let mut table = Table::new(vec![
        "fleet",
        "servers",
        "threads",
        "build ms",
        "run ms",
        "us/tick",
        "ns/server-tick",
        "seq frac",
        "arb frac",
        "steals",
    ]);
    let mut artifact = Vec::new();
    for n in SIZES {
        for threads in THREADS {
            artifact.push(run_row("uniform", n, threads, None, h));
        }
    }
    for threads in THREADS {
        artifact.push(run_row(
            "vmc_heavy",
            VMC_HEAVY_SIZE,
            threads,
            Some(VMC_HEAVY_INTERVALS),
            h,
        ));
    }
    for r in &artifact {
        table.row(vec![
            r.fleet.to_string(),
            r.servers.to_string(),
            r.threads.to_string(),
            Table::fmt(r.build_ms),
            Table::fmt(r.run_ms),
            Table::fmt(r.us_per_tick),
            Table::fmt(r.ns_per_server_tick),
            Table::fmt(r.global_phase_fraction),
            Table::fmt(r.arbitration_phase_fraction),
            r.steals.to_string(),
        ]);
    }
    println!("{table}");
    let run_ms_at = |fleet: &str, servers: usize, threads: usize| {
        artifact
            .iter()
            .find(|r: &&ScaleRow| r.fleet == fleet && r.servers == servers && r.threads == threads)
            .map(|r| r.run_ms)
            .unwrap_or(f64::NAN)
    };
    let largest = SIZES[SIZES.len() - 1];
    println!(
        "Largest fleet ({largest} servers): {:.2}x throughput at 4 threads vs 1.",
        run_ms_at("uniform", largest, 1) / run_ms_at("uniform", largest, 4)
    );
    println!(
        "VMC-heavy fleet ({VMC_HEAVY_SIZE} servers, arbitration every {} ticks): \
         {:.2}x throughput at 4 threads vs 1.",
        VMC_HEAVY_INTERVALS.vmc,
        run_ms_at("vmc_heavy", VMC_HEAVY_SIZE, 1) / run_ms_at("vmc_heavy", VMC_HEAVY_SIZE, 4)
    );
    println!(
        "Shape to check: ns/server-tick should stay roughly flat as the\n\
         fleet grows -- the SoA hot path is linear in servers, so per-tick\n\
         cost scales with n while per-server-tick cost does not. Adding\n\
         threads must never change mean_power_w (bit-identical results),\n\
         only run_ms."
    );
    write_json_artifact("BENCH_scale", &artifact);
}

//! **Scaling sweep** — epoch cost of the batched structure-of-arrays
//! engine from 48 to 1 536 servers (multi-rack topologies), reported as
//! wall-clock per tick and per server-tick, at worker-thread counts 1, 2
//! and 4. With `NPS_JSON_OUT_DIR` set, the sweep is written as
//! `BENCH_scale.json` (CI's perf-smoke artifact), one row per
//! (fleet size, thread count).
//!
//! Each point uses `Scenario::multi_rack`: `n/48` racks of 2 enclosures
//! × 16 blades plus `n/3` standalone servers, driven by the enterprise
//! trace corpus tiled across sites, under the coordinated architecture.
//! Parallel execution is bit-identical to sequential, so the thread
//! sweep isolates pure throughput: every row at a given fleet size
//! reports the same `mean_power_w`.
//!
//! Each row also reports `global_phase_fraction`: the share of run
//! wall-clock spent *outside* the sharded worker phase (GM arbitration,
//! bus replay, VMC, reductions — the Amdahl ceiling on thread scaling).
//! Sequential rows report 1.0 by construction.

use nps_bench::{banner, horizon, seed, write_json_artifact};
use nps_core::{CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::Table;
use serde::Serialize;
use std::time::Instant;

/// Server counts swept; 48 is one rack + standalone, then ×2 up to 1 536.
const SIZES: [usize; 6] = [48, 96, 192, 384, 768, 1536];

/// Worker-thread counts swept at every fleet size (CI checks the 4-vs-1
/// speedup on the largest fleet).
const THREADS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct ScaleRow {
    servers: usize,
    racks: usize,
    enclosures_per_rack: usize,
    blades_per_enclosure: usize,
    standalone: usize,
    threads: usize,
    horizon: u64,
    build_ms: f64,
    run_ms: f64,
    us_per_tick: f64,
    ns_per_server_tick: f64,
    /// Fraction of run wall-clock spent in the sequential global phase
    /// (1.0 minus the worker pool's busy time over total run time).
    global_phase_fraction: f64,
    /// Shards pulled from a busy peer's deque by an idle worker over the
    /// whole run (0 for sequential rows and perfectly balanced fleets).
    steals: u64,
    mean_power_w: f64,
}

fn main() {
    banner(
        "Scaling sweep: batched SoA engine, 48 -> 1536 servers x 1/2/4 threads",
        "DESIGN.md \u{a7}8, \u{a7}10; multi-rack extension of the paper's 180-server testbed",
    );
    let h = horizon();
    let mut table = Table::new(vec![
        "servers",
        "racks",
        "threads",
        "build ms",
        "run ms",
        "us/tick",
        "ns/server-tick",
        "seq frac",
        "steals",
    ]);
    let mut artifact = Vec::new();
    for n in SIZES {
        let (racks, enclosures_per_rack, blades) = (n / 48, 2, 16);
        let standalone = n - racks * enclosures_per_rack * blades;
        for threads in THREADS {
            let cfg = Scenario::multi_rack(
                SystemKind::BladeA,
                CoordinationMode::Coordinated,
                racks,
                enclosures_per_rack,
                blades,
                standalone,
            )
            .horizon(h)
            .seed(seed())
            .threads(threads)
            .build();

            let t0 = Instant::now();
            let mut runner = Runner::new(&cfg);
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let stats = runner.run_to_horizon();
            let run_ns = t1.elapsed().as_nanos() as f64;
            let run_ms = run_ns / 1e6;
            let global_phase_fraction = if run_ns > 0.0 {
                (1.0 - runner.parallel_nanos() as f64 / run_ns).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let steals = runner.steal_count();

            let ticks = stats.ticks.max(1) as f64;
            let us_per_tick = run_ms * 1e3 / ticks;
            let ns_per_server_tick = run_ms * 1e6 / (ticks * n as f64);
            table.row(vec![
                n.to_string(),
                racks.to_string(),
                threads.to_string(),
                Table::fmt(build_ms),
                Table::fmt(run_ms),
                Table::fmt(us_per_tick),
                Table::fmt(ns_per_server_tick),
                Table::fmt(global_phase_fraction),
                steals.to_string(),
            ]);
            artifact.push(ScaleRow {
                servers: n,
                racks,
                enclosures_per_rack,
                blades_per_enclosure: blades,
                standalone,
                threads,
                horizon: stats.ticks,
                build_ms,
                run_ms,
                us_per_tick,
                ns_per_server_tick,
                global_phase_fraction,
                steals,
                mean_power_w: stats.mean_power(),
            });
        }
    }
    println!("{table}");
    let largest = SIZES[SIZES.len() - 1];
    let run_ms_at = |threads: usize| {
        artifact
            .iter()
            .find(|r: &&ScaleRow| r.servers == largest && r.threads == threads)
            .map(|r| r.run_ms)
            .unwrap_or(f64::NAN)
    };
    println!(
        "Largest fleet ({largest} servers): {:.2}x throughput at 4 threads vs 1.",
        run_ms_at(1) / run_ms_at(4)
    );
    println!(
        "Shape to check: ns/server-tick should stay roughly flat as the\n\
         fleet grows -- the SoA hot path is linear in servers, so per-tick\n\
         cost scales with n while per-server-tick cost does not. Adding\n\
         threads must never change mean_power_w (bit-identical results),\n\
         only run_ms."
    );
    write_json_artifact("BENCH_scale", &artifact);
}

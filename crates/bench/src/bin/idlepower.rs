//! **§7 conclusions: the idle-power study** — "our results also motivate
//! the need to reduce the baseline idle power for future systems but
//! note interesting advantages from virtual machine consolidation even
//! in those cases." Server B with its idle power scaled down, across
//! controller subsets.

use nps_bench::{banner, run, scenario};
use nps_core::{ControllerMask, CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "§7: sensitivity to baseline idle power (Server B / 180)",
        "paper §7 conclusions (idle-power discussion)",
    );
    let mut table = Table::new(vec!["idle scale", "Coordinated %", "NoVMC %", "VMCOnly %"]);
    for idle_scale in [1.0, 0.7, 0.4] {
        let mut cells = vec![format!("{:.0}%", idle_scale * 100.0)];
        for mask in [
            ControllerMask::ALL,
            ControllerMask::NO_VMC,
            ControllerMask::VMC_ONLY,
        ] {
            let cfg = scenario(
                SystemKind::ServerB,
                Mix::All180,
                CoordinationMode::Coordinated,
            )
            .idle_scale(idle_scale)
            .mask(mask)
            .build();
            cells.push(Table::fmt(run(&cfg).power_savings_pct));
        }
        table.row(cells);
    }
    println!("{table}");
    println!(
        "Paper shape to check (§7): consolidation retains \"interesting\n\
         advantages even in those cases\" — the VMCOnly column stays high\n\
         at every idle scale. The NoVMC column *shrinks* as the machine\n\
         approaches energy proportionality: with little idle power to\n\
         shed, DVFS (which trades frequency for utilization) has less to\n\
         offer — the flip side of the same observation."
    );
}

//! **§5.4 "Policy choices"** — the six EM/GM budget-division policies
//! under the coordinated architecture, for both systems.

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, PolicyKind, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "§5.4: EM/GM budget-division policy choices",
        "paper §5.4 (policy choices study)",
    );
    for sys in SystemKind::BOTH {
        let mut table = Table::new(vec![
            "policy",
            "pwr save %",
            "perf loss %",
            "viol GM %",
            "viol EM %",
            "viol SM %",
        ]);
        for policy in PolicyKind::ALL {
            let cfg = scenario(sys, Mix::All180, CoordinationMode::Coordinated)
                .policy(policy)
                .build();
            let c = run(&cfg);
            table.row(vec![
                policy.name().to_string(),
                Table::fmt(c.power_savings_pct),
                Table::fmt(c.perf_loss_pct),
                Table::fmt(c.violations_gm_pct),
                Table::fmt(c.violations_em_pct),
                Table::fmt(c.violations_sm_pct),
            ]);
        }
        println!("{sys}:");
        println!("{table}");
    }
    println!(
        "Paper shape to check: demand-following policies (proportional,\n\
         history, fifo, random) show no significant variation. Our\n\
         demand-oblivious fair/priority variants deviate when enclosure\n\
         budgets bind after consolidation — see EXPERIMENTS.md."
    );
}

//! **Resilience experiments** — two parts:
//!
//! 1. **§5.1 prototype validation**: a single server under sustained high
//!    load with the RC thermal model: the uncoordinated EC+SM race drives
//!    thermal failover; the coordinated nesting settles safely.
//! 2. **Fault matrix**: the coordinated architecture on a paper scenario
//!    under each fault family ([`FaultPlan`]) — sensor noise, stuck
//!    sensors, dropped samples, stuck actuators, budget-message loss, and
//!    SM/EM/GM outages — demonstrating graceful degradation: every run
//!    completes, power stays finite, and violation metrics keep being
//!    reported while faults are active. Outage rows run twice: bare, and
//!    with warm standbys ([`nps_sim::RedundancyConfig`]), where the failure
//!    detector promotes the replica within the miss threshold and
//!    coordinated capping keeps running (no static-cap fallback). Every
//!    row runs under the safety-invariant monitor and must finish with
//!    zero violations.
//!
//! With `NPS_JSON_OUT_DIR` set, both tables are also written as JSON.

use nps_bench::{banner, horizon, seed, write_json_artifact};
use nps_core::{ControllerMask, CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::Table;
use nps_models::ServerModel;
use nps_sim::{
    BusConfig, ControllerLayer, FaultPlan, RetryConfig, ServerId, ThermalConfig, Topology,
};
use nps_traces::{Mix, UtilTrace};
use serde::Serialize;

#[derive(Serialize)]
struct ThermalRow {
    architecture: String,
    failovers: usize,
    pstate_races: u64,
    final_temp_c: f64,
    avg_power_w: f64,
}

#[derive(Serialize)]
struct FaultRow {
    scenario: String,
    energy: f64,
    delivered_work: f64,
    violations_server_pct: f64,
    violations_enclosure_pct: f64,
    violations_group_pct: f64,
    faults_injected: u64,
    degradations: u64,
    messages_lost: u64,
    outage_epochs: u64,
    grant_retries: u64,
    leases_expired: u64,
    promotions: u64,
    fenced: u64,
    invariant_checks: u64,
    invariant_violations: u64,
}

fn thermal_study() -> Vec<ThermalRow> {
    let model = ServerModel::blade_a();
    let cap = 0.9 * model.max_power();
    let horizon = 3_000u64;
    let mut rows = Vec::new();
    for mode in [
        CoordinationMode::Uncoordinated,
        CoordinationMode::Coordinated,
    ] {
        let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
            .horizon(horizon)
            .build();
        cfg.topology = Topology::builder().standalone(1).build();
        cfg.traces = vec![UtilTrace::constant("hot", 0.98, horizon as usize).expect("valid trace")];
        cfg.mask = ControllerMask {
            ec: true,
            sm: true,
            em: false,
            gm: false,
            vmc: false,
        };
        cfg.sim = cfg
            .sim
            .with_thermal(ThermalConfig::for_budget(model.max_power(), cap));
        let mut runner = Runner::new(&cfg);
        let stats = runner.run_to_horizon();
        rows.push(ThermalRow {
            architecture: mode.label().to_string(),
            failovers: stats.failovers,
            pstate_races: stats.pstate_conflicts,
            final_temp_c: runner.sim().temperature_c(ServerId(0)),
            avg_power_w: stats.mean_power(),
        });
    }
    rows
}

fn fault_matrix() -> Vec<FaultRow> {
    let h = horizon();
    // Outage window: the middle quarter of the run.
    let (o_start, o_end) = (h / 4, h / 2);
    // Bus delivery-fault profiles (see `nps_sim::BusConfig`): grants
    // ride the control-plane bus under delay/reorder/duplication/drop,
    // with retransmission and lease fallback picking up the slack.
    let quiet_bus = BusConfig::default();
    let retry = RetryConfig {
        max_attempts: 3,
        backoff_base_ticks: 2,
        backoff_max_ticks: 16,
        jitter_ticks: 1,
    };
    // Leases outlive a healthy refresh period (GM grants renew every
    // `T_gm` = 50 ticks), so an expiry means refreshes were actually
    // lost, not that the cadence outran the lease.
    let lossy_bus = BusConfig::default()
        .with_drop(0.10)
        .with_leases(120)
        .with_retry(retry);
    let chaotic_bus = BusConfig::default()
        .with_delay(2, 2)
        .with_drop(0.10)
        .with_duplication(0.05)
        .with_reordering(0.15, 3)
        .with_leases(75)
        .with_retry(retry);
    let cases: Vec<(&str, FaultPlan, BusConfig, bool)> = vec![
        ("clean", FaultPlan::disabled(), quiet_bus.clone(), false),
        (
            "sensor noise 5%",
            FaultPlan::disabled().with_sensor_noise(0.05),
            quiet_bus.clone(),
            false,
        ),
        (
            "stuck sensors",
            FaultPlan::disabled().with_stuck_sensors(0.02, 25),
            quiet_bus.clone(),
            false,
        ),
        (
            "dropped samples 10%",
            FaultPlan::disabled().with_dropped_samples(0.10),
            quiet_bus.clone(),
            false,
        ),
        (
            "stuck actuators",
            FaultPlan::disabled().with_stuck_actuators(0.02, 25),
            quiet_bus.clone(),
            false,
        ),
        (
            "message loss 25%",
            FaultPlan::disabled().with_message_loss(0.25),
            quiet_bus.clone(),
            false,
        ),
        (
            "SM outage",
            FaultPlan::disabled().with_outage(ControllerLayer::Sm, None, o_start, o_end),
            quiet_bus.clone(),
            false,
        ),
        (
            "EM outage",
            FaultPlan::disabled().with_outage(ControllerLayer::Em, None, o_start, o_end),
            quiet_bus.clone(),
            false,
        ),
        (
            "EM outage + standby",
            FaultPlan::disabled().with_outage(ControllerLayer::Em, None, o_start, o_end),
            quiet_bus.clone(),
            true,
        ),
        (
            "GM outage",
            FaultPlan::disabled().with_outage(ControllerLayer::Gm, None, o_start, o_end),
            quiet_bus.clone(),
            false,
        ),
        (
            "GM outage + standby",
            FaultPlan::disabled().with_outage(ControllerLayer::Gm, None, o_start, o_end),
            quiet_bus.clone(),
            true,
        ),
        (
            "bus drop 10% + retries",
            FaultPlan::disabled(),
            lossy_bus.clone(),
            false,
        ),
        (
            "bus chaos (delay+reorder+dup+drop)",
            FaultPlan::disabled(),
            chaotic_bus.clone(),
            false,
        ),
        (
            // No retransmission: every fourth grant vanishes for good, so
            // leases lapse and children fall back to their static caps.
            "bus brownout 25%, no retries",
            FaultPlan::disabled(),
            BusConfig::default().with_drop(0.25).with_leases(120),
            false,
        ),
        (
            "everything at once",
            FaultPlan::disabled()
                .with_sensor_noise(0.05)
                .with_stuck_sensors(0.02, 25)
                .with_dropped_samples(0.10)
                .with_stuck_actuators(0.02, 25)
                .with_message_loss(0.25)
                .with_outage(ControllerLayer::Sm, None, o_start, o_end)
                .with_outage(ControllerLayer::Em, None, o_start, o_end)
                .with_outage(ControllerLayer::Gm, None, o_start, o_end),
            chaotic_bus.clone(),
            false,
        ),
        (
            "everything at once + standbys",
            FaultPlan::disabled()
                .with_sensor_noise(0.05)
                .with_stuck_sensors(0.02, 25)
                .with_dropped_samples(0.10)
                .with_stuck_actuators(0.02, 25)
                .with_message_loss(0.25)
                .with_outage(ControllerLayer::Sm, None, o_start, o_end)
                .with_outage(ControllerLayer::Em, None, o_start, o_end)
                .with_outage(ControllerLayer::Gm, None, o_start, o_end),
            chaotic_bus,
            true,
        ),
    ];
    let mut rows = Vec::new();
    for (name, plan, bus, standby) in cases {
        let pure_outage = plan.sensor.drop_prob == 0.0 && plan.outages.len() == 1;
        let mut scenario =
            Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
                .horizon(h)
                .seed(seed())
                .faults(plan.with_seed(seed()))
                .bus(bus.with_seed(seed()))
                .invariants(true);
        if standby {
            scenario = scenario.standbys();
        }
        let cfg = scenario.build();
        let mut runner = Runner::new(&cfg);
        let stats = runner.run_to_horizon();
        let faults = runner.fault_stats();
        let rstats = runner.redundancy_stats();
        let istats = runner.invariant_stats();
        assert!(
            stats.energy.is_finite() && stats.energy >= 0.0,
            "{name}: non-finite energy under faults"
        );
        assert!(
            istats.is_clean(),
            "{name}: safety-invariant violations under faults: {istats}"
        );
        if standby {
            // The whole point of the warm standby: a controller outage is
            // bridged by promotion (within the miss threshold) instead of
            // the static-cap fallback, so coordinated capping never stops.
            assert!(
                rstats.promotions >= 1,
                "{name}: standby was never promoted across the outage"
            );
            // `degradations` also counts hold-last-good sensor recoveries,
            // so the zero-fallback claim is only checkable on the pure
            // outage rows (no sensor faults, no SM outage — SMs have no
            // standby and legitimately fall back).
            if pure_outage {
                assert_eq!(
                    faults.degradations, 0,
                    "{name}: static-cap fallback fired despite a healthy standby"
                );
            }
        }
        rows.push(FaultRow {
            scenario: name.to_string(),
            energy: stats.energy,
            delivered_work: stats.delivered_work,
            violations_server_pct: stats.violations.server.percent(),
            violations_enclosure_pct: stats.violations.enclosure.percent(),
            violations_group_pct: stats.violations.group.percent(),
            faults_injected: faults.total_faults(),
            degradations: faults.degradations,
            messages_lost: faults.messages_lost,
            outage_epochs: faults.outage_epochs,
            grant_retries: faults.grant_retries,
            leases_expired: faults.leases_expired,
            promotions: rstats.promotions,
            fenced: rstats.fenced,
            invariant_checks: istats.checks,
            invariant_violations: istats.total_violations(),
        });
    }
    rows
}

fn main() {
    banner(
        "§5.1 prototype + fault matrix: failover and graceful degradation",
        "paper §5.1 (lab prototype) and §3 (federated failure independence)",
    );

    let thermal = thermal_study();
    let mut table = Table::new(vec![
        "architecture",
        "failovers",
        "P-state races",
        "final temp °C",
        "avg power W",
    ]);
    for r in &thermal {
        table.row(vec![
            r.architecture.clone(),
            r.failovers.to_string(),
            r.pstate_races.to_string(),
            Table::fmt(r.final_temp_c),
            Table::fmt(r.avg_power_w),
        ]);
    }
    println!("{table}");
    println!(
        "Paper shape to check: the uncoordinated deployment fails over\n\
         (the EC overwrites the SM's throttling every tick, so power stays\n\
         pinned above the thermal budget); the coordinated nesting settles\n\
         below the critical temperature with zero actuator races.\n"
    );

    println!("Fault matrix (coordinated, Blade A / 60HH):");
    let matrix = fault_matrix();
    let mut table = Table::new(vec![
        "fault scenario",
        "faults",
        "degrad.",
        "lost msgs",
        "outages",
        "retries",
        "leases exp.",
        "promo",
        "fenced",
        "inv viol",
        "viol S %",
        "viol E %",
        "viol G %",
        "energy",
    ]);
    for r in &matrix {
        table.row(vec![
            r.scenario.clone(),
            r.faults_injected.to_string(),
            r.degradations.to_string(),
            r.messages_lost.to_string(),
            r.outage_epochs.to_string(),
            r.grant_retries.to_string(),
            r.leases_expired.to_string(),
            r.promotions.to_string(),
            r.fenced.to_string(),
            r.invariant_violations.to_string(),
            Table::fmt(r.violations_server_pct),
            Table::fmt(r.violations_enclosure_pct),
            Table::fmt(r.violations_group_pct),
            Table::fmt(r.energy),
        ]);
    }
    println!("{table}");
    println!(
        "Shape to check: every faulty run completes with finite power,\n\
         still reports violation metrics, and passes the safety-invariant\n\
         monitor — the federated stack degrades instead of collapsing when\n\
         sensors lie, messages drop, or whole controller layers go dark.\n\
         The `+ standby` rows bridge outages by warm-standby promotion:\n\
         coordinated capping keeps running and no static-cap fallback fires."
    );

    write_json_artifact("failover_thermal", &thermal);
    write_json_artifact("failover_fault_matrix", &matrix);
}

//! **§5.1 prototype validation** — a single server under sustained high
//! load with the RC thermal model: the uncoordinated EC+SM race drives
//! thermal failover; the coordinated nesting settles safely.

use nps_bench::banner;
use nps_core::{ControllerMask, CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::Table;
use nps_models::ServerModel;
use nps_sim::{ServerId, ThermalConfig, Topology};
use nps_traces::{Mix, UtilTrace};

fn main() {
    banner(
        "§5.1 prototype: thermal failover of the uncoordinated EC+SM",
        "paper §5.1 (lab prototype observation)",
    );
    let model = ServerModel::blade_a();
    let cap = 0.9 * model.max_power();
    let horizon = 3_000u64;

    let mut table = Table::new(vec![
        "architecture",
        "failovers",
        "P-state races",
        "final temp °C",
        "avg power W",
    ]);
    for mode in [
        CoordinationMode::Uncoordinated,
        CoordinationMode::Coordinated,
    ] {
        let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
            .horizon(horizon)
            .build();
        cfg.topology = Topology::builder().standalone(1).build();
        cfg.traces = vec![UtilTrace::constant("hot", 0.98, horizon as usize).expect("valid trace")];
        cfg.mask = ControllerMask {
            ec: true,
            sm: true,
            em: false,
            gm: false,
            vmc: false,
        };
        cfg.sim = cfg
            .sim
            .with_thermal(ThermalConfig::for_budget(model.max_power(), cap));
        let mut runner = Runner::new(&cfg);
        let stats = runner.run_to_horizon();
        table.row(vec![
            mode.label().to_string(),
            stats.failovers.to_string(),
            stats.pstate_conflicts.to_string(),
            Table::fmt(runner.sim().temperature_c(ServerId(0))),
            Table::fmt(stats.mean_power()),
        ]);
    }
    println!("{table}");
    println!(
        "Paper shape to check: the uncoordinated deployment fails over\n\
         (the EC overwrites the SM's throttling every tick, so power stays\n\
         pinned above the thermal budget); the coordinated nesting settles\n\
         below the critical temperature with zero actuator races."
    );
}

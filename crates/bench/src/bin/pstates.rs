//! **§5.3 "Number of P-states"** — restricting each system to its two
//! extreme P-states (and an intermediate subset) versus the full table,
//! for both architectures. The paper finds the two extremes get "behavior
//! close to that when all the P-states are considered", and that the
//! coordinated/uncoordinated gap is *more* pronounced with two states.

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "§5.3: sensitivity to the number of P-states",
        "paper §5.3 (P-state count study)",
    );
    for sys in SystemKind::BOTH {
        let full: Vec<usize> = (0..sys.model().num_pstates()).collect();
        let extremes = vec![0, full.len() - 1];
        let mid: Vec<usize> = if full.len() >= 4 {
            vec![0, 1, full.len() - 2, full.len() - 1]
        } else {
            full.clone()
        };
        let mut table = Table::new(vec![
            "P-states",
            "architecture",
            "pwr save %",
            "perf loss %",
            "viol SM %",
        ]);
        for (label, subset) in [
            (format!("all {}", full.len()), full),
            ("4 states".to_string(), mid),
            ("2 extremes".to_string(), extremes),
        ] {
            for mode in [
                CoordinationMode::Coordinated,
                CoordinationMode::Uncoordinated,
            ] {
                let cfg = scenario(sys, Mix::All180, mode)
                    .pstate_subset(subset.clone())
                    .build();
                let c = run(&cfg);
                table.row(vec![
                    label.clone(),
                    mode.label().to_string(),
                    Table::fmt(c.power_savings_pct),
                    Table::fmt(c.perf_loss_pct),
                    Table::fmt(c.violations_sm_pct),
                ]);
            }
        }
        println!("{sys}:");
        println!("{table}");
    }
    println!(
        "Paper shape to check: two extreme P-states come close to the full\n\
         table under coordination (\"a processor with two P-states is\n\
         significantly less complex to test and ship\"), and the relative\n\
         coordinated/uncoordinated difference grows as the control choices\n\
         get more constrained."
    );
}

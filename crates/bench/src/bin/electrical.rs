//! **§3.1 optional electrical power capper (CAP)** — thermal budgets
//! tolerate bounded transient violations; electrical (fuse) budgets do
//! not. The paper adds CAP as a hard clamp *"implemented in parallel to
//! the nested controller directly adjusting P-states"*. This bench runs
//! the coordinated architecture with and without CAP and verifies the
//! never-violate property against per-tick peak power.

use nps_bench::{banner, horizon, scenario};
use nps_core::{CoordinationMode, Runner, SystemKind};
use nps_metrics::Table;
use nps_sim::ServerId;
use nps_traces::Mix;

/// Runs and tracks per-tick electrical-budget violations (instantaneous,
/// not window-averaged — a fuse does not average).
fn run_with_cap(elec_frac: Option<f64>, budget_frac: f64) -> (f64, f64, u64) {
    let mut sc = scenario(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated);
    if let Some(f) = elec_frac {
        sc = sc.electrical_cap(f);
    }
    let cfg = sc.build();
    let budget = budget_frac * cfg.model.max_power();
    let mut runner = Runner::new(&cfg);
    let n = cfg.topology.num_servers();
    let mut violations = 0u64;
    for _ in 0..horizon() {
        runner.tick();
        for i in 0..n {
            if runner.sim().server_power(ServerId(i)) > budget + 1e-9 {
                violations += 1;
            }
        }
    }
    let stats = runner.stats();
    (
        stats.energy / horizon() as f64,
        100.0 * (1.0 - stats.delivery_ratio()),
        violations,
    )
}

fn main() {
    banner(
        "§3.1 optional electrical capper (Blade A / 60HH, per-tick fuse checks)",
        "paper §3.1 / §6.1 item (2)",
    );
    let frac = 0.85;
    let mut table = Table::new(vec![
        "configuration",
        "mean power kW",
        "undelivered work %",
        "per-tick fuse violations",
    ]);
    for (label, elec) in [
        ("thermal capping only (SM)", None),
        ("SM + electrical CAP", Some(frac)),
    ] {
        let (mean_w, loss, violations) = run_with_cap(elec, frac);
        table.row(vec![
            label.to_string(),
            Table::fmt(mean_w / 1_000.0),
            Table::fmt(loss),
            violations.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Shape to check: the SM alone allows *transient* excursions above\n\
         the {:.0}%-of-max fuse line (fine for thermal budgets, fatal for\n\
         electrical ones); with CAP clamping P-states in parallel, the\n\
         per-tick violation count is exactly zero, at a small additional\n\
         performance cost.",
        frac * 100.0
    );
}

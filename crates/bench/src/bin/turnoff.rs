//! **§5.4 "Avoiding turning machines off"** — the VMC with power-off
//! disabled: savings drop sharply (paper: Blade A 64% → 23%, Server B →
//! ~5%), but the coordinated architecture "automatically adapted ... and
//! moved to more aggressively controlling power at the local levels".

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_opt::VmcConfig;
use nps_traces::Mix;

fn main() {
    banner(
        "§5.4: avoiding turning machines off",
        "paper §5.4 (implementation choices)",
    );
    let mut table = Table::new(vec![
        "system",
        "turn-off",
        "pwr save %",
        "perf loss %",
        "migrations",
    ]);
    for sys in SystemKind::BOTH {
        for allow in [true, false] {
            let vmc = VmcConfig {
                allow_turn_off: allow,
                ..VmcConfig::default()
            };
            let cfg = scenario(sys, Mix::All180, CoordinationMode::Coordinated)
                .vmc(vmc)
                .build();
            let c = run(&cfg);
            table.row(vec![
                sys.label().to_string(),
                if allow { "allowed" } else { "disabled" }.to_string(),
                Table::fmt(c.power_savings_pct),
                Table::fmt(c.perf_loss_pct),
                c.run.migrations.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Paper shape to check: disabling turn-off slashes savings (64→23%\n\
         Blade A, →~5% Server B in the paper); what remains comes from\n\
         local power management, to which the architecture automatically\n\
         shifts."
    );
}

//! **§5.4 "Sensitivity to migration overhead"** — α_M ∈ {10%, 20%, 50%}:
//! the paper reports performance degradations increase but stay "less
//! than 10% in all cases for the coordinated solution".

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_sim::SimConfig;
use nps_traces::Mix;

fn main() {
    banner(
        "§5.4: sensitivity to migration overhead",
        "paper §5.4 (migration overhead study)",
    );
    let mut table = Table::new(vec![
        "system",
        "α_M %",
        "pwr save %",
        "perf loss %",
        "migrations",
    ]);
    for sys in SystemKind::BOTH {
        for alpha_m in [0.10, 0.20, 0.50] {
            let cfg = scenario(sys, Mix::All180, CoordinationMode::Coordinated)
                .sim(SimConfig::default().with_alpha_m(alpha_m))
                .build();
            let c = run(&cfg);
            table.row(vec![
                sys.label().to_string(),
                format!("{:.0}", alpha_m * 100.0),
                Table::fmt(c.power_savings_pct),
                Table::fmt(c.perf_loss_pct),
                c.run.migrations.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Paper shape to check: perf loss grows with α_M but stays under\n\
         10% for the coordinated solution in every case."
    );
}

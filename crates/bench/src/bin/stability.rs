//! **Appendix A** — stability bounds and convergence demonstrations: the
//! EC gain bound `λ < 1/r_ref`, the SM gain bound `β < 2/c_max`, and
//! closed-loop convergence/divergence traces on the continuous plant.

use nps_bench::{banner, write_json_artifact};
use nps_control::{stability, EfficiencyController};
use nps_metrics::Table;
use nps_models::ServerModel;
use serde::Serialize;

#[derive(Serialize)]
struct ConvergenceRow {
    lambda: f64,
    tracking_error: Vec<f64>,
    inside_bound: bool,
}

fn track(lambda: f64, r_ref: f64, demand_frac: f64, steps: usize) -> f64 {
    let model = ServerModel::blade_a();
    let mut ec = EfficiencyController::new(&model, lambda, r_ref);
    ec.set_r_ref(r_ref);
    let demand = demand_frac * model.max_frequency_hz();
    let mut f = ec.frequency_hz();
    let mut r = (demand / f).min(1.0);
    for _ in 0..steps {
        f = ec.update_frequency(r, 1.0, 4.0 * model.max_frequency_hz());
        r = (demand / f).min(1.0);
    }
    r
}

fn main() {
    banner(
        "Appendix A: stability bounds and convergence",
        "paper Appendix A (Proposition A and the SM bound)",
    );

    println!("Gain bounds:");
    let mut bounds = Table::new(vec!["quantity", "Blade A", "Server B"]);
    let (a, b) = (ServerModel::blade_a(), ServerModel::server_b());
    bounds.row(vec![
        "EC global bound 1/r_ref (r_ref = 0.75)".to_string(),
        format!("{:.3}", stability::ec_gain_bound_global(0.75)),
        format!("{:.3}", stability::ec_gain_bound_global(0.75)),
    ]);
    bounds.row(vec![
        "EC local bound 2/r_ref".to_string(),
        format!("{:.3}", stability::ec_gain_bound_local(0.75)),
        format!("{:.3}", stability::ec_gain_bound_local(0.75)),
    ]);
    bounds.row(vec![
        "SM slope c_max (normalized)".to_string(),
        format!("{:.3}", a.max_capping_slope_normalized()),
        format!("{:.3}", b.max_capping_slope_normalized()),
    ]);
    bounds.row(vec![
        "SM bound 2/c_max".to_string(),
        format!("{:.3}", stability::sm_gain_bound(&a)),
        format!("{:.3}", stability::sm_gain_bound(&b)),
    ]);
    println!("{bounds}");

    for model in [&a, &b] {
        let violations = stability::check_gains(model, 0.8, 0.75, 1.0);
        println!(
            "paper base gains (λ=0.8, β=1.0) on {}: {}",
            model.name(),
            if violations.is_empty() {
                "provably stable".to_string()
            } else {
                format!("VIOLATIONS: {violations:?}")
            }
        );
    }
    println!();

    println!("EC closed-loop tracking error |r − r_ref| after 500 steps (r_ref = 0.9):");
    let mut conv = Table::new(vec![
        "λ",
        "demand 20%",
        "demand 50%",
        "demand 80%",
        "verdict",
    ]);
    let mut artifact = Vec::new();
    for lambda in [0.4, 0.8, 1.05, 2.5] {
        let errs: Vec<f64> = [0.2, 0.5, 0.8]
            .into_iter()
            .map(|d| (track(lambda, 0.9, d, 500) - 0.9).abs())
            .collect();
        let stable = lambda < stability::ec_gain_bound_global(0.9);
        conv.row(vec![
            format!("{lambda:.2}"),
            format!("{:.2e}", errs[0]),
            format!("{:.2e}", errs[1]),
            format!("{:.2e}", errs[2]),
            if stable {
                "inside bound (converges)"
            } else {
                "outside bound"
            }
            .to_string(),
        ]);
        artifact.push(ConvergenceRow {
            lambda,
            tracking_error: errs,
            inside_bound: stable,
        });
    }
    println!("{conv}");
    write_json_artifact("stability_convergence", &artifact);
    println!(
        "Paper shape to check: every λ inside the Proposition-A bound\n\
         drives the tracking error to zero; λ beyond the local bound\n\
         oscillates."
    );
}

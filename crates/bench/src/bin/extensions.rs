//! **§6 extensions in action** — the paper's extensibility claims,
//! exercised: (3) MIMO platform capping across CPU/memory/disk,
//! (4) VM-level EC arbitration, and (6) the energy-delay objective in
//! the VMC.

use nps_bench::{banner, run, scenario};
use nps_control::mimo::{Component, MimoCapper};
use nps_control::{ArbitrationPolicy, FrequencyArbiter};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_models::ServerModel;
use nps_opt::{Objective, VmcConfig};
use nps_traces::Mix;

fn main() {
    banner(
        "§6 extensions: MIMO capping, VM-level arbitration, objectives",
        "paper §6.1",
    );

    // --- (3) MIMO platform capper ----------------------------------------
    println!("(3) MIMO platform capper (CPU + memory + disk under one budget):");
    let comps = vec![
        Component::typical_cpu(),
        Component::typical_memory(),
        Component::typical_disk(),
    ];
    let mut mimo = Table::new(vec![
        "platform budget W",
        "cpu lvl",
        "mem lvl",
        "disk lvl",
        "power W",
        "weighted perf",
    ]);
    for budget in [140.0, 120.0, 100.0, 80.0, 60.0] {
        let a = MimoCapper::new(budget).allocate(&comps, &[3.0, 2.0, 1.0]);
        mimo.row(vec![
            format!("{budget:.0}"),
            format!("L{}", a.levels[0]),
            format!("L{}", a.levels[1]),
            format!("L{}", a.levels[2]),
            Table::fmt(a.power_watts),
            format!("{:.2}", a.weighted_perf),
        ]);
    }
    println!("{mimo}");

    // --- (4) VM-level EC arbitration --------------------------------------
    println!("(4) VM-level EC arbitration (three VM controllers, one platform):");
    let model = ServerModel::blade_a();
    let demands = [250e6, 400e6, 180e6];
    let mut arb_table = Table::new(vec!["policy", "platform P-state", "frequency MHz"]);
    for policy in [
        ArbitrationPolicy::MaxDemand,
        ArbitrationPolicy::SumDemand,
        ArbitrationPolicy::WeightedMean,
    ] {
        let p = FrequencyArbiter::new(policy).arbitrate(&model, &demands, &[]);
        arb_table.row(vec![
            format!("{policy:?}"),
            p.to_string(),
            format!("{:.0}", model.state(p).frequency_hz / 1e6),
        ]);
    }
    println!("{arb_table}");

    // --- (6) energy-delay objective ---------------------------------------
    println!("(6) VMC objective: power vs energy-delay (Blade A / 180):");
    let mut obj_table = Table::new(vec!["objective", "pwr save %", "perf loss %", "migrations"]);
    for (label, objective) in [
        ("power", Objective::Power),
        ("energy-delay", Objective::EnergyDelay),
    ] {
        let vmc = VmcConfig {
            objective,
            ..VmcConfig::default()
        };
        let cfg = scenario(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .vmc(vmc)
        .build();
        let c = run(&cfg);
        obj_table.row(vec![
            label.to_string(),
            Table::fmt(c.power_savings_pct),
            Table::fmt(c.perf_loss_pct),
            c.run.migrations.to_string(),
        ]);
    }
    println!("{obj_table}");
    println!(
        "Shape to check: the MIMO capper deepens the lowest-weight\n\
         components first; SumDemand arbitration sizes the platform to\n\
         the VMs' combined slices; the energy-delay objective trades a\n\
         few points of power savings for lower performance loss."
    );
}

//! **§5.4 "Sensitivity to time constants"** — sweeping each controller's
//! interval (EC 1,2,5,10; SM 1,2,5,10·base; GM 50,100,200,400; VMC
//! 100…500). The paper finds results "relatively invariant" for
//! EC/SM/GM; for the VMC, *increased frequency of operation led to a
//! reduction in power savings* via more aggressive feedback.

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, Intervals, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn sweep(label: &str, variants: Vec<(String, Intervals)>) {
    let mut table = Table::new(vec![label, "pwr save %", "perf loss %", "viol SM %"]);
    for (name, intervals) in variants {
        let cfg = scenario(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .intervals(intervals)
        .build();
        let c = run(&cfg);
        table.row(vec![
            name,
            Table::fmt(c.power_savings_pct),
            Table::fmt(c.perf_loss_pct),
            Table::fmt(c.violations_sm_pct),
        ]);
    }
    println!("{table}");
}

fn main() {
    banner(
        "§5.4: sensitivity to controller time constants (Blade A / 180)",
        "paper §5.4 (time constants study)",
    );
    let base = Intervals::default();

    println!("EC interval:");
    sweep(
        "T_ec",
        [1, 2, 5, 10]
            .into_iter()
            .map(|t| (t.to_string(), Intervals { ec: t, ..base }))
            .collect(),
    );
    println!("SM interval:");
    sweep(
        "T_sm",
        [5, 10, 25, 50]
            .into_iter()
            .map(|t| (t.to_string(), Intervals { sm: t, ..base }))
            .collect(),
    );
    println!("GM interval:");
    sweep(
        "T_gm",
        [50, 100, 200, 400]
            .into_iter()
            .map(|t| (t.to_string(), Intervals { gm: t, ..base }))
            .collect(),
    );
    println!("VMC interval:");
    sweep(
        "T_vmc",
        [100, 200, 300, 400, 500]
            .into_iter()
            .map(|t| (t.to_string(), Intervals { vmc: t, ..base }))
            .collect(),
    );
    println!(
        "Paper shape to check: EC/SM/GM sweeps are relatively flat (they\n\
         are). For the VMC the paper reports *reduced* savings at higher\n\
         frequency (feedback aggressiveness dominates); in this\n\
         reproduction fresher demand estimates dominate instead and a\n\
         faster VMC saves slightly more — a documented deviation, see\n\
         EXPERIMENTS.md. Setting `VmcConfig::buffer_growth_floor > 0`\n\
         strengthens the feedback mechanism the paper describes."
    );
}

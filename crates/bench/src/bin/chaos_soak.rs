//! **Chaos soak** — randomized fault-plan and bus-fault schedules over a
//! seed matrix, with warm standbys and the safety-invariant monitor
//! enabled throughout. Each seed derives its own chaos profile (sensor
//! noise, stuck sensors/actuators, dropped samples, message loss, 1–3
//! controller outage windows, and a randomized bus with delay, drop,
//! duplication, reordering, leases, and retries) from a counter RNG, so
//! the "random" schedules are themselves reproducible.
//!
//! Every seed runs three times — twice sequentially and once on four
//! worker threads — and the run must be **byte-identical** across all
//! three (stats, fault/redundancy/invariant counters, and the full
//! checkpoint), and must finish with **zero safety-invariant
//! violations**. With `NPS_JSON_OUT_DIR` set, writes
//! `chaos_soak.json` (CI's chaos-soak artifact).

use nps_bench::{banner, horizon, seed, write_json_artifact};
use nps_core::{CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::Table;
use nps_sim::{BusConfig, ControllerLayer, FaultPlan, RetryConfig};
use nps_traces::Mix;
use rand::rngs::CounterRng;
use serde::Serialize;

/// The soak's seed matrix (`NPS_SEED` is folded in, so CI can shift the
/// whole matrix without editing the binary).
const SOAK_SEEDS: [u64; 6] = [11, 42, 99, 1234, 31337, 900_913];

/// Worker-thread counts each seed must agree across.
const THREADS: [usize; 2] = [1, 4];

#[derive(Serialize)]
struct SoakRow {
    seed: u64,
    outage_windows: usize,
    faults_injected: u64,
    messages_lost: u64,
    outage_epochs: u64,
    degradations: u64,
    promotions: u64,
    fenced: u64,
    missed_heartbeats: u64,
    syncs_applied: u64,
    invariant_checks: u64,
    invariant_violations: u64,
    /// FNV-1a over the serialized stats + counters + checkpoint; equal
    /// across the sequential rerun and every thread count.
    fingerprint: String,
}

/// Derives a randomized-but-reproducible fault plan from `chaos_seed`.
fn chaos_plan(chaos_seed: u64, h: u64) -> FaultPlan {
    let rng = CounterRng::new(chaos_seed ^ 0x6368_616f_735f_736b);
    let mut plan = FaultPlan::disabled()
        .with_seed(chaos_seed)
        .with_sensor_noise(0.08 * rng.f64_at(0, 0))
        .with_stuck_sensors(0.03 * rng.f64_at(1, 0), 10 + rng.u64_at(2, 0) % 30)
        .with_dropped_samples(0.12 * rng.f64_at(3, 0))
        .with_stuck_actuators(0.03 * rng.f64_at(4, 0), 10 + rng.u64_at(5, 0) % 30)
        .with_message_loss(0.20 * rng.f64_at(6, 0));
    let windows = 1 + rng.u64_at(7, 0) % 3;
    for k in 0..windows {
        let layer = match rng.u64_at(8, k) % 3 {
            0 => ControllerLayer::Sm,
            1 => ControllerLayer::Em,
            _ => ControllerLayer::Gm,
        };
        // Whole-layer or instance-0 outages; overlapping windows are fair
        // game — `FaultPlan::normalized` merges them.
        let instance = if rng.bool_at(9, k, 0.5) {
            None
        } else {
            Some(0)
        };
        let start = rng.u64_at(10, k) % (h / 2).max(1);
        let len = 20 + rng.u64_at(11, k) % (h / 4).max(1);
        plan = plan.with_outage(layer, instance, start, start + len);
    }
    plan
}

/// Derives a randomized-but-reproducible bus profile from `chaos_seed`.
fn chaos_bus(chaos_seed: u64) -> BusConfig {
    let rng = CounterRng::new(chaos_seed ^ 0x6368_616f_735f_6275);
    let mut bus = BusConfig::default()
        .with_seed(chaos_seed)
        .with_drop(0.12 * rng.f64_at(0, 0))
        .with_duplication(0.06 * rng.f64_at(1, 0))
        .with_reordering(0.15 * rng.f64_at(2, 0), 1 + rng.u64_at(3, 0) % 4);
    if rng.bool_at(4, 0, 0.5) {
        bus = bus.with_delay(1 + rng.u64_at(5, 0) % 3, rng.u64_at(6, 0) % 3);
    }
    if rng.bool_at(7, 0, 0.7) {
        // Leases comfortably outlive the GM refresh cadence (T_gm = 50).
        bus = bus
            .with_leases(100 + rng.u64_at(8, 0) % 100)
            .with_retry(RetryConfig {
                max_attempts: 2 + (rng.u64_at(9, 0) % 3) as u32,
                backoff_base_ticks: 1 + rng.u64_at(10, 0) % 3,
                backoff_max_ticks: 8 + rng.u64_at(11, 0) % 16,
                jitter_ticks: rng.u64_at(12, 0) % 2,
            });
    }
    bus
}

/// FNV-1a, hex-encoded — cheap, dependency-free content fingerprint.
fn fnv1a(parts: &[&str]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Runs one chaos profile at the given thread count and returns the
/// byte-level fingerprint plus the row counters.
fn soak_run(chaos_seed: u64, h: u64, threads: usize) -> (String, SoakRow) {
    let plan = chaos_plan(chaos_seed, h);
    let outage_windows = plan.outages.len();
    let cfg = Scenario::paper(SystemKind::BladeA, Mix::Hh60, CoordinationMode::Coordinated)
        .horizon(h)
        .seed(chaos_seed)
        .threads(threads)
        .faults(plan)
        .bus(chaos_bus(chaos_seed))
        .standbys()
        .invariants(true)
        .build();
    let mut runner = Runner::new(&cfg);
    let stats = runner.run_to_horizon();
    let faults = runner.fault_stats();
    let rstats = runner.redundancy_stats();
    let istats = runner.invariant_stats();
    let snap = runner.snapshot();
    let fingerprint = fnv1a(&[
        &serde_json::to_string(&stats).expect("stats serialize"),
        &serde_json::to_string(&faults).expect("fault stats serialize"),
        &serde_json::to_string(&rstats).expect("redundancy stats serialize"),
        &serde_json::to_string(&istats).expect("invariant stats serialize"),
        &serde_json::to_string(&snap).expect("checkpoint serialize"),
    ]);
    let row = SoakRow {
        seed: chaos_seed,
        outage_windows,
        faults_injected: faults.total_faults(),
        messages_lost: faults.messages_lost,
        outage_epochs: faults.outage_epochs,
        degradations: faults.degradations,
        promotions: rstats.promotions,
        fenced: rstats.fenced,
        missed_heartbeats: rstats.missed_heartbeats,
        syncs_applied: rstats.syncs_applied,
        invariant_checks: istats.checks,
        invariant_violations: istats.total_violations(),
        fingerprint: fingerprint.clone(),
    };
    assert!(
        stats.energy.is_finite() && stats.energy >= 0.0,
        "seed {chaos_seed}: non-finite energy under chaos"
    );
    assert!(
        istats.is_clean(),
        "seed {chaos_seed} ({threads} threads): safety-invariant violations: {istats}"
    );
    (fingerprint, row)
}

fn main() {
    banner(
        "Chaos soak: randomized faults + standbys, zero invariant violations",
        "paper §3 (federated failure independence); DESIGN.md §12",
    );
    let h = horizon();
    let base = seed();
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "seed",
        "windows",
        "faults",
        "promo",
        "fenced",
        "inv checks",
        "inv viol",
        "fingerprint",
    ]);
    for s in SOAK_SEEDS {
        let chaos_seed = s ^ base.rotate_left(17);
        // Sequential run, sequential rerun, and a 4-thread run must all
        // produce the same bytes.
        let (fp_seq, row) = soak_run(chaos_seed, h, THREADS[0]);
        let (fp_rerun, _) = soak_run(chaos_seed, h, THREADS[0]);
        assert_eq!(
            fp_seq, fp_rerun,
            "seed {chaos_seed}: sequential rerun diverged"
        );
        let (fp_par, _) = soak_run(chaos_seed, h, THREADS[1]);
        assert_eq!(
            fp_seq, fp_par,
            "seed {chaos_seed}: {} threads diverged from sequential",
            THREADS[1]
        );
        table.row(vec![
            chaos_seed.to_string(),
            row.outage_windows.to_string(),
            row.faults_injected.to_string(),
            row.promotions.to_string(),
            row.fenced.to_string(),
            row.invariant_checks.to_string(),
            row.invariant_violations.to_string(),
            row.fingerprint.clone(),
        ]);
        rows.push(row);
    }
    println!("{table}");
    println!(
        "Shape to check: every seed's chaos schedule completes with zero\n\
         safety-invariant violations, and all three runs per seed (seq,\n\
         seq rerun, 4 threads) share one fingerprint — the redundancy\n\
         protocol and the monitor are bit-deterministic under fire."
    );
    write_json_artifact("chaos_soak", &rows);
}

//! **Ablation: VMC bin-packing algorithm** — the paper (§4.1) notes
//! *"many algorithms are available to solve this 0-1 integer program"*
//! and picks greedy bin-packing. This bench compares three packing rules
//! under identical constraints, plus the local-search improver.

use nps_bench::{banner, run_all, scenario};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_opt::{PackingAlgorithm, VmcConfig};
use nps_traces::Mix;

fn main() {
    banner(
        "Ablation: VMC packing algorithm (both systems, 180 mix)",
        "paper §4.1 (solver choice)",
    );
    for sys in SystemKind::BOTH {
        let mut cfgs = Vec::new();
        let mut labels = Vec::new();
        for algorithm in PackingAlgorithm::ALL {
            for local_search in [0usize, 3] {
                let vmc = VmcConfig {
                    algorithm,
                    local_search_iters: local_search,
                    ..VmcConfig::default()
                };
                labels.push(format!(
                    "{}{}",
                    algorithm.name(),
                    if local_search > 0 {
                        " + local search"
                    } else {
                        ""
                    }
                ));
                cfgs.push(
                    scenario(sys, Mix::All180, CoordinationMode::Coordinated)
                        .vmc(vmc)
                        .build(),
                );
            }
        }
        let results = run_all(&cfgs);
        let mut table = Table::new(vec![
            "algorithm",
            "pwr save %",
            "perf loss %",
            "latency stretch",
            "migrations",
        ]);
        for (label, c) in labels.iter().zip(&results) {
            table.row(vec![
                label.clone(),
                Table::fmt(c.power_savings_pct),
                Table::fmt(c.perf_loss_pct),
                format!("{:.2}", c.latency_stretch),
                c.run.migrations.to_string(),
            ]);
        }
        println!("{sys}:");
        println!("{table}");
    }
    println!(
        "Shape to check: all solvers land within ~1 point of savings — the\n\
         architecture's results do not hinge on the exact 0-1 solver,\n\
         vindicating the paper's plain greedy choice. The classical\n\
         first-fit/best-fit rules squeeze out slightly more savings but,\n\
         being migration-oblivious, churn ~2× the migrations and pay more\n\
         performance; the marginal-power rule internalizes that cost."
    );
}

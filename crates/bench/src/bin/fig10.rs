//! **Figure 10** — impact of different power budgets: the three budget
//! configurations (`20-15-10`, `25-20-15`, `30-25-20`) × coordinated /
//! uncoordinated × both systems.

use nps_bench::{banner, run, scenario};
use nps_core::{BudgetSpec, CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "Figure 10: impact of different power budgets",
        "paper §5.3, Figure 10",
    );
    for sys in SystemKind::BOTH {
        let mut table = Table::new(vec![
            "architecture",
            "budgets",
            "GM %",
            "EM %",
            "SM %",
            "perf loss %",
            "pwr save %",
        ]);
        for mode in [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
        ] {
            for budgets in BudgetSpec::FIGURE10 {
                let cfg = scenario(sys, Mix::All180, mode).budgets(budgets).build();
                let c = run(&cfg);
                table.row(vec![
                    mode.label().to_string(),
                    budgets.label(),
                    Table::fmt(c.violations_gm_pct),
                    Table::fmt(c.violations_em_pct),
                    Table::fmt(c.violations_sm_pct),
                    Table::fmt(c.perf_loss_pct),
                    Table::fmt(c.power_savings_pct),
                ]);
            }
        }
        println!("{sys}:");
        println!("{table}");
    }
    println!(
        "Paper shape to check: as budgets tighten, the coordinated solution\n\
         responds effectively (savings shrink because the VMC consolidates\n\
         more conservatively, violations stay controlled) while the\n\
         uncoordinated solution progressively gets worse."
    );
}

//! **§7 future work: coordination with the cooling domain** — the paper
//! closes by proposing to extend the architecture "to include
//! coordination with the equivalent spectrum of solutions in the ...
//! cooling domains". This bench runs the full IT-side architecture and a
//! per-zone CRAC cooling plant side by side: one CRAC per enclosure plus
//! one for the standalone-server zone, each driven by a
//! [`nps_control::CracController`].
//!
//! The coordination story transfers: the coordinated architecture's
//! enclosure budgets *balance heat across zones*, and because fan power
//! follows a cube law, balanced zones cool far cheaper than the skewed
//! heat map an uncoordinated deployment produces.

use nps_bench::{banner, horizon, scenario, seed};
use nps_control::CracController;
use nps_core::{CoordinationMode, Runner, SystemKind};
use nps_metrics::Table;
use nps_sim::cooling::{CoolingPlant, CracConfig};
use nps_sim::EnclosureId;
use nps_traces::Mix;

/// Runs IT + cooling together; returns (IT energy, fan energy,
/// overheated fraction, max zone share).
fn run_with_cooling(mode: CoordinationMode) -> (f64, f64, f64, f64) {
    let cfg = scenario(SystemKind::BladeA, Mix::All180, mode).build();
    let mut runner = Runner::new(&cfg);
    let topo = runner.sim().topology().clone();
    let zones = topo.num_enclosures() + 1; // +1 = standalone zone
    let zone_max = |z: usize| -> f64 {
        if z < topo.num_enclosures() {
            topo.enclosure_servers(EnclosureId(z))
                .iter()
                .map(|&s| runner.sim().model(s).max_power())
                .sum()
        } else {
            topo.standalone_servers()
                .iter()
                .map(|&s| runner.sim().model(s).max_power())
                .sum()
        }
    };
    let configs: Vec<CracConfig> = (0..zones)
        .map(|z| CracConfig::for_zone(zone_max(z)))
        .collect();
    let mut plant = CoolingPlant::new(configs.clone());
    let mut controllers: Vec<CracController> =
        configs.iter().map(CracController::default_for).collect();

    let mut zone_watts = vec![0.0; zones];
    let mut peak_zone_share = 0.0f64;
    let crac_interval = 10u64; // CRACs are slower than the EC, faster than the EM
    for t in 0..horizon() {
        runner.tick();
        for (z, w) in zone_watts.iter_mut().enumerate() {
            *w = if z < topo.num_enclosures() {
                runner.sim().enclosure_power(EnclosureId(z))
            } else {
                topo.standalone_servers()
                    .iter()
                    .map(|&s| runner.sim().server_power(s))
                    .sum()
            };
        }
        let total: f64 = zone_watts.iter().sum();
        if total > 0.0 {
            let max_zone = zone_watts.iter().cloned().fold(0.0, f64::max);
            peak_zone_share = peak_zone_share.max(max_zone / total);
        }
        if t % crac_interval == 0 {
            for z in 0..zones {
                let inlet = plant.config(z).inlet_c(zone_watts[z], plant.airflow(z));
                let a = controllers[z].step(plant.config(z), zone_watts[z], inlet);
                plant.set_airflow(z, a);
            }
        }
        plant.step(&zone_watts);
    }
    let stats = runner.stats();
    (
        stats.energy,
        plant.fan_energy(),
        plant.overheated_fraction(),
        peak_zone_share,
    )
}

fn main() {
    banner(
        "§7 extension: coordinating with the cooling domain (Blade A / 180)",
        "paper §7 (future-work direction)",
    );
    println!(
        "7 cooling zones (6 enclosures + standalone), one CRAC each;\n\
         fan power follows the cube law, so balanced heat cools cheaper.\n"
    );
    let mut table = Table::new(vec![
        "architecture",
        "IT kW (mean)",
        "cooling kW (mean)",
        "cooling overhead %",
        "overheated ticks %",
    ]);
    let h = horizon() as f64;
    for mode in [
        CoordinationMode::Coordinated,
        CoordinationMode::Uncoordinated,
    ] {
        let (it, fan, overheated, _) = run_with_cooling(mode);
        table.row(vec![
            mode.label().to_string(),
            Table::fmt(it / h / 1_000.0),
            Table::fmt(fan / h / 1_000.0),
            Table::fmt(100.0 * fan / it),
            Table::fmt(100.0 * overheated),
        ]);
    }
    println!("{table}");
    println!(
        "(seed {}) Shape to check: the coordinated architecture's enclosure\n\
         budgets keep the heat map balanced, so its *cooling overhead*\n\
         (fan energy / IT energy) is lower and inlets stay within the\n\
         ASHRAE band; the uncoordinated deployment concentrates heat and\n\
         pays for it cubically.",
        seed()
    );
}

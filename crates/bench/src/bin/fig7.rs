//! **Figure 7** — coordinated vs uncoordinated deployments across four
//! configurations ({Blade A, Server B} × {180, 60HH}): power budget
//! violations at the GM/EM/SM levels and performance loss, all normalized
//! to the no-controller baseline. Power savings (discussed in §5.1 text:
//! "64% reduction in power consumed" for Blade A/180) are reported as an
//! extra column.

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "Figure 7: coordinated vs uncoordinated across four configurations",
        "paper §5.1, Figure 7",
    );
    let mut table = Table::new(vec![
        "configuration",
        "architecture",
        "Violates(GM) %",
        "Violates(EM) %",
        "Violates(SM) %",
        "Perf-loss %",
        "pwr save %",
        "P-state races",
    ]);
    for (sys, mix) in [
        (SystemKind::BladeA, Mix::All180),
        (SystemKind::BladeA, Mix::Hh60),
        (SystemKind::ServerB, Mix::All180),
        (SystemKind::ServerB, Mix::Hh60),
    ] {
        for mode in [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
        ] {
            let cfg = scenario(sys, mix, mode).build();
            let c = run(&cfg);
            table.row(vec![
                format!("{}/{}", sys.label(), mix.label()),
                mode.label().to_string(),
                Table::fmt(c.violations_gm_pct),
                Table::fmt(c.violations_em_pct),
                Table::fmt(c.violations_sm_pct),
                Table::fmt(c.perf_loss_pct),
                Table::fmt(c.power_savings_pct),
                c.run.pstate_conflicts.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Paper shape to check: the uncoordinated architecture has higher\n\
         performance degradation and/or power budget violations in every\n\
         configuration, most pronounced for the high-activity 60HH mixes;\n\
         empty (zero) GM/EM cells for the coordinated runs match the\n\
         paper's \"empty bars mean no violations\"."
    );
}

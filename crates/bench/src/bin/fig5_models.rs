//! **Figure 5** — design parameters and implementation assumptions: the
//! calibrated power/performance models of Blade A and Server B, printed
//! as coefficient tables and utilization sweeps, plus the base-parameter
//! table.

use nps_bench::banner;
use nps_core::{BudgetSpec, Intervals};
use nps_metrics::Table;
use nps_models::ServerModel;

fn main() {
    banner(
        "Figure 5: design parameters and model curves",
        "paper §4, Figure 5",
    );
    for model in [ServerModel::blade_a(), ServerModel::server_b()] {
        println!(
            "{} (max {:.0} W, idle floor {:.0} W):",
            model.name(),
            model.max_power(),
            model.min_active_power()
        );
        let mut coeffs = Table::new(vec![
            "P-state",
            "freq (MHz)",
            "capacity",
            "c_p (W/util)",
            "d_p (W)",
            "a_p (perf)",
        ]);
        for (i, s) in model.states().iter().enumerate() {
            coeffs.row(vec![
                format!("P{i}"),
                format!("{:.0}", s.frequency_hz / 1e6),
                format!("{:.3}", s.frequency_hz / model.max_frequency_hz()),
                Table::fmt(s.power.slope),
                Table::fmt(s.power.idle),
                format!("{:.3}", s.perf.scale),
            ]);
        }
        println!("{coeffs}");

        let mut sweep = Table::new(vec![
            "util %",
            "pow@P0",
            "pow@deepest",
            "perf@P0",
            "perf@deepest",
        ]);
        let deepest = model.num_pstates() - 1;
        for u in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            sweep.row(vec![
                format!("{:.0}", u * 100.0),
                Table::fmt(model.power(0, u)),
                Table::fmt(model.power(deepest, u)),
                format!("{:.3}", model.perf(0, u)),
                format!("{:.3}", model.perf(deepest, u)),
            ]);
        }
        println!("{sweep}");
    }

    println!("Base parameters (paper Figure 5, right column):");
    let iv = Intervals::default();
    let b = BudgetSpec::PAPER_20_15_10;
    let mut params = Table::new(vec!["parameter", "base value"]);
    for (k, v) in [
        ("static budgets (grp-enc-loc, % off max)", b.label()),
        (
            "control intervals T_ec/T_sm/T_em/T_gm/T_vmc",
            format!("{}/{}/{}/{}/{}", iv.ec, iv.sm, iv.em, iv.gm, iv.vmc),
        ),
        ("EC gain λ", "0.8".to_string()),
        ("SM gain β_loc", "1.0 (normalized power)".to_string()),
        (
            "virtualization overhead α_V",
            "10% of VM utilization".to_string(),
        ),
        ("migration overhead α_M", "10% during migration".to_string()),
        (
            "workloads",
            "180 enterprise traces (synthetic corpus)".to_string(),
        ),
        (
            "cluster (180 mix)",
            "6 × 20-blade enclosures + 60 standalone".to_string(),
        ),
        (
            "cluster (60 mixes)",
            "2 × 20-blade enclosures + 20 standalone".to_string(),
        ),
    ] {
        params.row(vec![k.to_string(), v]);
    }
    println!("{params}");
}

//! **Controller telemetry report** — event-level view of one coordinated
//! run: events per controller, static-violation timelines per level, and
//! the EM/GM budget-flow trace. Set `NPS_TELEMETRY_JSON=<path>` to also
//! dump the raw event log for offline analysis, or `NPS_JSON_OUT_DIR` to
//! write a per-kind event-count artifact.

use std::io::Write;

use nps_bench::{banner, horizon, scenario, write_json_artifact};
use nps_core::{CoordinationMode, Runner, SystemKind};
use nps_metrics::{BudgetLevel, EventKind, TelemetryLog};
use nps_traces::Mix;
use serde::Serialize;

#[derive(Serialize)]
struct KindCount {
    kind: String,
    count: u64,
}

fn main() {
    banner(
        "controller telemetry report",
        "event-level trace of the §5 coordinated architecture",
    );

    let cfg = scenario(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .build();
    let mut runner = Runner::new(&cfg);
    runner.enable_ring_telemetry(1 << 20);
    let stats = runner.run_to_horizon();

    let ring = runner.ring_telemetry().expect("ring recorder installed");
    let log = ring.export();
    println!("{}", ring.summary());

    let epochs = (horizon().saturating_sub(1)) / cfg.intervals.vmc.max(1);
    println!(
        "VMC planned {} epochs; {} migrations started, {} logged",
        epochs,
        stats.migrations,
        log.count(EventKind::Migration),
    );

    for level in BudgetLevel::ALL {
        let ticks = log.violation_timeline(level);
        match (ticks.first(), ticks.last()) {
            (Some(first), Some(last)) => println!(
                "{:<9} static violations: {} windows, ticks {}..={}",
                level.label(),
                ticks.len(),
                first,
                last
            ),
            _ => println!("{:<9} static violations: none", level.label()),
        }
    }

    let flow = log.budget_flow();
    if let Some((t, level, child, watts)) = flow.last() {
        println!(
            "budget flow: {} grants (last: t={} {} child {} ← {:.1} W)",
            flow.len(),
            t,
            level.label(),
            child,
            watts
        );
    }

    let counts: Vec<KindCount> = EventKind::ALL
        .iter()
        .map(|&k| KindCount {
            kind: k.label().to_string(),
            count: log.count(k),
        })
        .collect();
    write_json_artifact("telemetry_event_counts", &counts);

    if let Some(path) = std::env::var_os("NPS_TELEMETRY_JSON") {
        let json = ring.to_json();
        // Belt and braces: prove the export parses before writing it out.
        TelemetryLog::from_json(&json).expect("exported log re-parses");
        let mut f = std::fs::File::create(&path).expect("create JSON dump");
        f.write_all(json.as_bytes()).expect("write JSON dump");
        println!("event log written to {}", path.to_string_lossy());
    }
}

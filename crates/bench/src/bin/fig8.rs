//! **Figure 8** — isolating the impact of different controllers: power
//! savings for Coordinated (all five), NoVMC, and VMCOnly across the six
//! workload mixes and both systems. With `NPS_JSON_OUT_DIR` set, the
//! grid is also written as a JSON artifact.

use nps_bench::{banner, run_all, scenario, write_json_artifact};
use nps_core::{ControllerMask, CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Row {
    system: String,
    mix: String,
    coordinated_pct: f64,
    no_vmc_pct: f64,
    vmc_only_pct: f64,
}

fn main() {
    banner(
        "Figure 8: power savings by controller subset",
        "paper §5.2, Figure 8",
    );
    let masks = [
        ("Coordinated", ControllerMask::ALL),
        ("NoVMC", ControllerMask::NO_VMC),
        ("VMCOnly", ControllerMask::VMC_ONLY),
    ];
    let mixes = [
        Mix::L60,
        Mix::M60,
        Mix::H60,
        Mix::Hh60,
        Mix::Hhh60,
        Mix::All180,
    ];
    let mut artifact = Vec::new();
    for sys in SystemKind::BOTH {
        // Batch all 18 runs of this system through the parallel sweep.
        let mut cfgs = Vec::new();
        for mix in mixes {
            for (_, mask) in masks {
                cfgs.push(
                    scenario(sys, mix, CoordinationMode::Coordinated)
                        .mask(mask)
                        .build(),
                );
            }
        }
        let results = run_all(&cfgs);
        let mut table = Table::new(vec!["mix", "Coordinated %", "NoVMC %", "VMCOnly %"]);
        for (mi, mix) in mixes.iter().enumerate() {
            let at = |k: usize| results[mi * masks.len() + k].power_savings_pct;
            let mut cells = vec![mix.label().to_string()];
            for k in 0..masks.len() {
                cells.push(Table::fmt(at(k)));
            }
            table.row(cells);
            artifact.push(Fig8Row {
                system: sys.to_string(),
                mix: mix.label().to_string(),
                coordinated_pct: at(0),
                no_vmc_pct: at(1),
                vmc_only_pct: at(2),
            });
        }
        println!("{sys}:");
        println!("{table}");
    }
    println!(
        "Paper shape to check: most savings come from the VMC (especially\n\
         on high-idle-power Server B, where NoVMC saves almost nothing);\n\
         as mix activity rises the savings shrink and the *relative* share\n\
         of local power management (NoVMC) grows."
    );
    write_json_artifact("fig8", &artifact);
}

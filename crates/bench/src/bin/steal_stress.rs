//! **Work-stealing stress** — a deliberately lopsided fleet (one rack
//! dwarfing several small ones plus a standalone tail) whose
//! size-weighted shard cuts cannot balance perfectly, so the worker
//! pool's per-participant deques must steal to keep every thread busy.
//! Reports run wall-clock, the 4-vs-1 speedup, the steal count, and the
//! sequential-phase fraction at each thread count. With
//! `NPS_JSON_OUT_DIR` set, writes `BENCH_steal_stress.json` (CI's
//! perf-smoke artifact, gated on the measured speedup).
//!
//! Parallel execution is bit-identical to sequential, so every row
//! reports the same `mean_power_w`; only the timing columns move.

use nps_bench::{banner, horizon, seed, write_json_artifact};
use nps_core::{CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::Table;
use nps_sim::Topology;
use nps_traces::Mix;
use serde::Serialize;
use std::time::Instant;

/// Worker-thread counts swept (CI gates the 4-vs-1 speedup).
const THREADS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct StealRow {
    servers: usize,
    threads: usize,
    horizon: u64,
    run_ms: f64,
    /// Shards pulled from a busy peer's deque by an idle worker over the
    /// whole run (0 for the sequential row).
    steals: u64,
    /// Fraction of run wall-clock spent in the sequential global phase.
    global_phase_fraction: f64,
    mean_power_w: f64,
}

fn main() {
    banner(
        "Work-stealing stress: lopsided fleet, 1/2/4 threads",
        "DESIGN.md \u{a7}11; size-weighted shard cuts + per-worker steal deques",
    );
    let h = horizon();
    // One 6x32 rack towering over six 1x8 racks and a standalone tail:
    // the enclosure-snapped shard cuts leave unequal blocks, so balanced
    // completion requires stealing.
    let topo = Topology::builder()
        .rack(6, 32)
        .racks(6, 1, 8)
        .standalone(12)
        .build();
    let servers = topo.num_servers();
    let mut table = Table::new(vec![
        "servers", "threads", "run ms", "steals", "seq frac", "mean W",
    ]);
    let mut artifact = Vec::new();
    for threads in THREADS {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .topology(topo.clone())
        .electrical_cap(0.92)
        .horizon(h)
        .seed(seed())
        .threads(threads)
        .build();
        let t0 = Instant::now();
        let mut runner = Runner::new(&cfg);
        let stats = runner.run_to_horizon();
        let run_ns = t0.elapsed().as_nanos() as f64;
        let run_ms = run_ns / 1e6;
        let steals = runner.steal_count();
        let global_phase_fraction = if run_ns > 0.0 {
            (1.0 - runner.parallel_nanos() as f64 / run_ns).clamp(0.0, 1.0)
        } else {
            1.0
        };
        table.row(vec![
            servers.to_string(),
            threads.to_string(),
            Table::fmt(run_ms),
            steals.to_string(),
            Table::fmt(global_phase_fraction),
            Table::fmt(stats.mean_power()),
        ]);
        artifact.push(StealRow {
            servers,
            threads,
            horizon: stats.ticks,
            run_ms,
            steals,
            global_phase_fraction,
            mean_power_w: stats.mean_power(),
        });
    }
    println!("{table}");
    let run_ms_at = |threads: usize| {
        artifact
            .iter()
            .find(|r: &&StealRow| r.threads == threads)
            .map(|r| r.run_ms)
            .unwrap_or(f64::NAN)
    };
    println!(
        "Lopsided fleet ({servers} servers): {:.2}x throughput at 4 threads vs 1.",
        run_ms_at(1) / run_ms_at(4)
    );
    write_json_artifact("BENCH_steal_stress", &artifact);
}

//! **§6 extension (5): heterogeneity in system types** — "this can be
//! easily addressed by including a range of different models (like in
//! Figure 5) in the controllers". A mixed fleet (Blade A enclosures +
//! Server B standalone servers) under coordinated and uncoordinated
//! management.

use nps_bench::{banner, run, scenario};
use nps_core::{ControllerMask, CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "§6 extension: heterogeneous fleet (Blade A blades + Server B standalone)",
        "paper §6.1 item (5)",
    );
    let mut table = Table::new(vec![
        "fleet",
        "architecture",
        "pwr save %",
        "perf loss %",
        "viol GM/EM/SM %",
        "races",
    ]);
    for (label, hetero) in [("homogeneous Blade A", false), ("heterogeneous", true)] {
        for mode in [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
        ] {
            let mut sc = scenario(SystemKind::BladeA, Mix::All180, mode);
            if hetero {
                sc = sc.heterogeneous();
            }
            let c = run(&sc.build());
            table.row(vec![
                label.to_string(),
                mode.label().to_string(),
                Table::fmt(c.power_savings_pct),
                Table::fmt(c.perf_loss_pct),
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    c.violations_gm_pct, c.violations_em_pct, c.violations_sm_pct
                ),
                c.run.pstate_conflicts.to_string(),
            ]);
        }
    }
    println!("{table}");

    // The coordinated VMC should exploit heterogeneity: prefer parking
    // load on the efficient blades and emptying the idle-hungry 2U boxes.
    let cfg = scenario(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .heterogeneous()
    .mask(ControllerMask::ALL)
    .build();
    let mut runner = nps_core::Runner::new(&cfg);
    runner.run_to_horizon();
    let topo = runner.sim().topology().clone();
    let on = |pred: &dyn Fn(nps_sim::ServerId) -> bool| {
        topo.servers()
            .filter(|&s| pred(s) && runner.sim().is_on(s))
            .count()
    };
    let blades_on = on(&|s| topo.enclosure_of(s).is_some());
    let standalone_on = on(&|s| topo.enclosure_of(s).is_none());
    println!(
        "final state: {blades_on}/120 efficient blades on, \
         {standalone_on}/60 idle-hungry standalone servers on"
    );
    println!(
        "\nPaper shape to check: coordination still wins on the mixed fleet\n\
         (no races, bounded violations), and the power-aware VMC drains\n\
         the high-idle Server B boxes first."
    );
}

//! **Figure 9** — characterizing the coordination interfaces: the six
//! architecture variants (coordinated, uncoordinated, and the four
//! piecemeal ablations) for both systems, reporting per-level violations,
//! performance loss, and power savings.

use nps_bench::{banner, run, scenario};
use nps_core::{CoordinationMode, SystemKind};
use nps_metrics::Table;
use nps_traces::Mix;

fn main() {
    banner(
        "Figure 9: characterizing different coordination interfaces",
        "paper §5.2, Figure 9",
    );
    for sys in SystemKind::BOTH {
        let mut table = Table::new(vec![
            "system under control",
            "GM %",
            "EM %",
            "SM %",
            "perf loss %",
            "pwr save %",
        ]);
        for mode in CoordinationMode::FIGURE9 {
            let cfg = scenario(sys, Mix::All180, mode).build();
            let c = run(&cfg);
            table.row(vec![
                mode.label().to_string(),
                Table::fmt(c.violations_gm_pct),
                Table::fmt(c.violations_em_pct),
                Table::fmt(c.violations_sm_pct),
                Table::fmt(c.perf_loss_pct),
                Table::fmt(c.power_savings_pct),
            ]);
        }
        println!("{sys}:");
        println!("{table}");
    }
    println!(
        "Paper shape to check: every non-coordinated row suffers at least\n\
         one drawback — increased performance loss, reduced power savings,\n\
         or increased budget violations — versus the coordinated row."
    );
}

//! Batched vs. per-object controller epochs: the structure-of-arrays
//! [`ControllerBank`] against the seed's scalar
//! `Vec<EfficiencyController>` / `Vec<ServerManager>` hot path, at the
//! paper's 180-server fleet size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nps_control::{ControllerBank, EfficiencyController, ServerManager};
use nps_models::{ModelTable, ServerModel};
use std::hint::black_box;

const FLEET: usize = 180;
const LAMBDA: f64 = 0.8;
const BETA: f64 = 1.0;
const R_REF: f64 = 0.75;

fn utils() -> Vec<f64> {
    (0..FLEET)
        .map(|i| 0.15 + 0.7 * ((i * 37) % 100) as f64 / 100.0)
        .collect()
}

fn powers() -> Vec<f64> {
    (0..FLEET)
        .map(|i| 180.0 + ((i * 53) % 120) as f64)
        .collect()
}

fn scalar_fleet() -> (
    Vec<ServerModel>,
    Vec<EfficiencyController>,
    Vec<ServerManager>,
) {
    let models: Vec<ServerModel> = (0..FLEET).map(|_| ServerModel::blade_a()).collect();
    let ecs: Vec<EfficiencyController> = models
        .iter()
        .map(|m| EfficiencyController::new(m, LAMBDA, R_REF))
        .collect();
    let sms: Vec<ServerManager> = models
        .iter()
        .map(|m| ServerManager::new(m, 0.9 * m.max_power(), BETA))
        .collect();
    (models, ecs, sms)
}

fn batched_fleet() -> ControllerBank {
    let models: Vec<ServerModel> = (0..FLEET).map(|_| ServerModel::blade_a()).collect();
    let caps: Vec<f64> = models.iter().map(|m| 0.9 * m.max_power()).collect();
    ControllerBank::new(ModelTable::from_models(&models), LAMBDA, BETA, R_REF, &caps)
}

fn bench_ec_epoch(c: &mut Criterion) {
    let utils = utils();
    let mut group = c.benchmark_group("ec_epoch_180");
    group.bench_function("scalar", |b| {
        let (models, mut ecs, _) = scalar_fleet();
        b.iter(|| {
            for i in 0..FLEET {
                black_box(ecs[i].step(&models[i], black_box(utils[i])));
            }
        });
    });
    group.bench_function("batched", |b| {
        let mut bank = batched_fleet();
        b.iter(|| {
            for (i, &u) in utils.iter().enumerate() {
                black_box(bank.ec_step(i, black_box(u)));
            }
        });
    });
    group.finish();
}

fn bench_sm_epoch(c: &mut Criterion) {
    let powers = powers();
    let mut group = c.benchmark_group("sm_epoch_180");
    group.bench_function("scalar", |b| {
        b.iter_batched(
            scalar_fleet,
            |(_, mut ecs, mut sms)| {
                for i in 0..FLEET {
                    black_box(sms[i].step_coordinated(black_box(powers[i]), &mut ecs[i]));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            batched_fleet,
            |mut bank| {
                for (i, &w) in powers.iter().enumerate() {
                    black_box(bank.sm_step_coordinated(i, black_box(w)));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_ec_epoch, bench_sm_epoch);
criterion_main!(benches);

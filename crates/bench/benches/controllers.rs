//! Micro-benchmarks of the controller hot paths: the per-tick EC step,
//! the SM interval, P-state quantization, and budget-division policies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nps_control::{
    BudgetPolicy, EfficiencyController, FairShare, HistoryWeighted, ProportionalShare,
    ServerManager,
};
use nps_models::ServerModel;
use std::hint::black_box;

fn bench_ec_step(c: &mut Criterion) {
    let model = ServerModel::blade_a();
    c.bench_function("ec_step", |b| {
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        let mut util: f64 = 0.3;
        b.iter(|| {
            util = (util * 1.01).min(1.0);
            black_box(ec.step(&model, black_box(util)))
        });
    });
}

fn bench_sm_step(c: &mut Criterion) {
    let model = ServerModel::server_b();
    c.bench_function("sm_step_coordinated", |b| {
        let mut sm = ServerManager::new(&model, 0.9 * model.max_power(), 1.0);
        let mut ec = EfficiencyController::new(&model, 0.8, 0.75);
        b.iter(|| black_box(sm.step_coordinated(black_box(280.0), &mut ec)));
    });
}

fn bench_quantize(c: &mut Criterion) {
    let model = ServerModel::server_b();
    c.bench_function("quantize", |b| {
        let mut f = 1.1e9;
        b.iter(|| {
            f = if f > 2.5e9 { 1.1e9 } else { f + 1.7e7 };
            black_box(model.quantize(black_box(f)))
        });
    });
}

fn bench_policies(c: &mut Criterion) {
    let consumption: Vec<f64> = (0..60).map(|i| 50.0 + (i % 7) as f64 * 20.0).collect();
    let caps = vec![270.0; 60];
    let mut group = c.benchmark_group("policy_divide_60_children");
    group.bench_function("proportional", |b| {
        let mut p = ProportionalShare;
        b.iter(|| black_box(p.divide(9_000.0, &consumption, &caps)));
    });
    group.bench_function("fair", |b| {
        let mut p = FairShare;
        b.iter(|| black_box(p.divide(9_000.0, &consumption, &caps)));
    });
    group.bench_function("history", |b| {
        b.iter_batched(
            || HistoryWeighted::new(0.3),
            |mut p| black_box(p.divide(9_000.0, &consumption, &caps)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_capping_slope(c: &mut Criterion) {
    c.bench_function("max_capping_slope_normalized", |b| {
        let model = ServerModel::server_b();
        b.iter(|| black_box(model.max_capping_slope_normalized()));
    });
}

criterion_group!(
    benches,
    bench_ec_step,
    bench_sm_step,
    bench_quantize,
    bench_policies,
    bench_capping_slope
);
criterion_main!(benches);

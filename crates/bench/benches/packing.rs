//! Benchmarks of the VMC's greedy bin-packing at the paper's fleet sizes
//! (60, 180) and a 4× scale-up, plus the local-search improver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nps_models::ServerModel;
use nps_opt::{ClusterContext, Vmc, VmcConfig};
use nps_sim::{Placement, Topology};
use std::hint::black_box;

struct Fleet {
    topo: Topology,
    models: Vec<ServerModel>,
    current: Placement,
    cap_loc: Vec<f64>,
    cap_enc: Vec<f64>,
    cap_grp: f64,
    demands: Vec<f64>,
}

fn fleet(n: usize) -> Fleet {
    let enclosures = n / 30; // paper ratio: 1/3 of servers in enclosures
    let blades = 20 * enclosures;
    let topo = Topology::builder()
        .enclosures(enclosures, 20)
        .standalone(n - blades)
        .build();
    let model = ServerModel::blade_a();
    let max = model.max_power();
    Fleet {
        models: vec![model; n],
        current: Placement::one_per_server(n, n),
        cap_loc: vec![0.9 * max; n],
        cap_enc: vec![0.85 * 20.0 * max; enclosures],
        cap_grp: 0.8 * max * n as f64,
        demands: (0..n)
            .map(|i| 0.1 + 0.4 * ((i * 7) % 13) as f64 / 13.0)
            .collect(),
        topo,
    }
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("vmc_plan_greedy");
    for n in [60usize, 180, 720] {
        let f = fleet(n);
        let vmc = Vmc::new(VmcConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let ctx = ClusterContext {
                topo: &f.topo,
                models: &f.models,
                current: &f.current,
                cap_loc: &f.cap_loc,
                cap_enc: &f.cap_enc,
                cap_grp: f.cap_grp,
            };
            b.iter(|| black_box(vmc.plan(black_box(&f.demands), &ctx)));
        });
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    let f = fleet(180);
    let vmc = Vmc::new(VmcConfig {
        local_search_iters: 3,
        ..VmcConfig::default()
    });
    c.bench_function("vmc_plan_greedy_plus_local_search_180", |b| {
        let ctx = ClusterContext {
            topo: &f.topo,
            models: &f.models,
            current: &f.current,
            cap_loc: &f.cap_loc,
            cap_enc: &f.cap_enc,
            cap_grp: f.cap_grp,
        };
        b.iter(|| black_box(vmc.plan(black_box(&f.demands), &ctx)));
    });
}

criterion_group!(benches, bench_greedy, bench_local_search);
criterion_main!(benches);

//! End-to-end experiment benchmarks: simulator tick throughput and
//! scaled-down runs of every figure's experiment path, so
//! `cargo bench --workspace` exercises each reproduction pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nps_core::{BudgetSpec, ControllerMask, CoordinationMode, Runner, Scenario, SystemKind};
use nps_models::ServerModel;
use nps_sim::{SimConfig, Simulation, Topology};
use nps_traces::{Corpus, Mix};
use std::hint::black_box;

/// Short horizon so one bench iteration stays in the milliseconds.
const BENCH_HORIZON: u64 = 600;

fn bench_sim_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_tick_throughput");
    for n in [60usize, 180] {
        let topo = Topology::builder().standalone(n).build();
        let traces = Corpus::enterprise(500, 1).into_traces();
        let sim = Simulation::new(
            topo,
            ServerModel::blade_a(),
            traces.into_iter().take(n).collect(),
            SimConfig::default(),
        )
        .expect("valid sim");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut s = sim.clone();
            b.iter(|| {
                s.step();
                black_box(s.group_power())
            });
        });
    }
    group.finish();
}

fn run_cfg(cfg: &nps_core::ExperimentConfig) -> f64 {
    Runner::new(cfg).run_to_horizon().energy
}

fn bench_figure_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_paths");
    group.sample_size(10);

    // Figure 7 path: coordinated and uncoordinated on the 180 cluster.
    for mode in [
        CoordinationMode::Coordinated,
        CoordinationMode::Uncoordinated,
    ] {
        let cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
            .horizon(BENCH_HORIZON)
            .build();
        group.bench_function(
            format!("fig7_{}", mode.label().replace([' ', ','], "_")),
            |b| b.iter(|| black_box(run_cfg(&cfg))),
        );
    }
    // Figure 8 path: VMC-only mask.
    let cfg = Scenario::paper(
        SystemKind::ServerB,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .mask(ControllerMask::VMC_ONLY)
    .horizon(BENCH_HORIZON)
    .build();
    group.bench_function("fig8_vmconly", |b| b.iter(|| black_box(run_cfg(&cfg))));
    // Figure 9 path: one ablation.
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::CoordApparentUtil,
    )
    .horizon(BENCH_HORIZON)
    .build();
    group.bench_function("fig9_appr_util", |b| b.iter(|| black_box(run_cfg(&cfg))));
    // Figure 10 path: tightest budgets.
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .budgets(BudgetSpec::PAPER_30_25_20)
    .horizon(BENCH_HORIZON)
    .build();
    group.bench_function("fig10_tight_budgets", |b| {
        b.iter(|| black_box(run_cfg(&cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_sim_tick, bench_figure_paths);
criterion_main!(benches);

//! Telemetry overhead benchmarks: the same coordinated run with no
//! recorder, a [`NoopRecorder`], and a bounded [`RingRecorder`]. The
//! contract is that `none` and `noop` are indistinguishable (the no-op
//! path must cost nothing measurable), and `ring` shows the true price of
//! retaining events.

use criterion::{criterion_group, criterion_main, Criterion};
use nps_core::{CoordinationMode, Runner, Scenario, SystemKind};
use nps_metrics::{NoopRecorder, RingRecorder};
use nps_traces::Mix;
use std::hint::black_box;

/// Short horizon so one bench iteration stays in the milliseconds.
const BENCH_HORIZON: u64 = 600;

#[derive(Clone, Copy)]
enum Sink {
    None,
    Noop,
    Ring,
}

fn run_with(sink: Sink) -> f64 {
    let cfg = Scenario::paper(
        SystemKind::BladeA,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(BENCH_HORIZON)
    .build();
    let mut runner = Runner::new(&cfg);
    match sink {
        Sink::None => {}
        Sink::Noop => runner.set_recorder(Box::new(NoopRecorder)),
        Sink::Ring => runner.set_recorder(Box::new(RingRecorder::new(1 << 16))),
    }
    runner.run_to_horizon().energy
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("none", |b| b.iter(|| black_box(run_with(Sink::None))));
    group.bench_function("noop", |b| b.iter(|| black_box(run_with(Sink::Noop))));
    group.bench_function("ring", |b| b.iter(|| black_box(run_with(Sink::Ring))));
    group.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);

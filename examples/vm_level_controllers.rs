//! Paper §6 extension (4), live: three VM-level efficiency controllers
//! share one physical server. Each VM's controller runs a closed loop on
//! its *own virtual container* (continuous frequency, no physical
//! quantization) and demands a slice; a [`FrequencyArbiter`] merges the
//! demands into one platform P-state — the paper's "arbitration
//! interface similar to the `<min>` interface ... though likely more
//! generalized".
//!
//! ```sh
//! cargo run --release --example vm_level_controllers
//! ```

use no_power_struggles::prelude::*;

fn main() {
    println!("VM-level efficiency controllers with platform arbitration");
    println!("==========================================================\n");

    let model = ServerModel::blade_a();
    let fmax = model.max_frequency_hz();
    let horizon = 2_000usize;
    // Three VMs with offset slow-varying demand (fractions of the
    // platform's full speed).
    let demand = |vm: usize, t: usize| -> f64 {
        let phase = vm as f64 * 2.0;
        (0.22 + 0.12 * ((t as f64 / 300.0) + phase).sin()).max(0.02)
    };

    let mut table = Table::new(vec![
        "policy",
        "avg power W",
        "delivered/demanded %",
        "avg platform P-state",
    ]);

    for policy in [
        ArbitrationPolicy::SumDemand,
        ArbitrationPolicy::MaxDemand,
        ArbitrationPolicy::WeightedMean,
    ] {
        let arbiter = FrequencyArbiter::new(policy);
        let mut ecs: Vec<EfficiencyController> = (0..3)
            .map(|_| EfficiencyController::new(&model, 0.8, 0.8))
            .collect();
        let mut pstate = PState::P0;
        let (mut energy, mut delivered, mut demanded) = (0.0, 0.0, 0.0);
        let mut pstate_sum = 0usize;
        for t in 0..horizon {
            let capacity = model.capacity(pstate);
            let demands: Vec<f64> = (0..3).map(|vm| demand(vm, t)).collect();
            let total: f64 = demands.iter().sum();
            let share = (capacity / total).min(1.0);
            demanded += total;
            delivered += total * share;
            let util = (total / capacity).min(1.0);
            energy += model.power(pstate.index(), util);
            pstate_sum += pstate.index();
            // Each VM-level EC closes its loop on its own virtual
            // container: utilization = granted work / own frequency.
            let slice_demands: Vec<f64> = ecs
                .iter_mut()
                .zip(&demands)
                .map(|(ec, &d)| {
                    let granted_hz = d * share * fmax;
                    let r_vm = (granted_hz / ec.frequency_hz()).min(1.0);
                    // Virtual containers are continuous: no quantization.
                    ec.update_frequency(r_vm, 0.02 * fmax, fmax)
                })
                .collect();
            pstate = arbiter.arbitrate(&model, &slice_demands, &[]);
        }
        table.row(vec![
            format!("{policy:?}"),
            Table::fmt(energy / horizon as f64),
            Table::fmt(100.0 * delivered / demanded),
            format!("P{:.1}", pstate_sum as f64 / horizon as f64),
        ]);
    }
    println!("{table}");
    println!(
        "SumDemand right-sizes the platform to the VMs' combined slices —\n\
         the correct generalization of the `min` interface when each\n\
         controller owns only a slice. MaxDemand and WeightedMean\n\
         under-serve (the slices must *add up*), and the VM-level loops\n\
         cannot even tell: each EC sees its granted share meet its own\n\
         r_ref and settles — the same saturation misreading behind the\n\
         paper's VMC vicious cycle, one level down."
    );
}

//! The budget cascade, hand-wired from the individual controllers: a
//! group manager re-provisions its budget across two enclosures, each
//! enclosure manager re-provisions to its blades, and every blade's
//! server manager enforces `min(local static cap, granted cap)` by
//! steering its efficiency controller's utilization target.
//!
//! This example uses the controller crates directly (no experiment
//! runner) to show how the paper's `min` interfaces compose.
//!
//! ```sh
//! cargo run --release --example capping_cascade
//! ```

use no_power_struggles::control::{
    CapperLevel, EfficiencyController, GroupCapper, ProportionalShare, ServerManager,
};
use no_power_struggles::prelude::*;

/// Steady-state power of a server tracking `r_ref` at a given demand
/// (fraction of max capacity): run the EC to convergence.
fn settle(model: &ServerModel, ec: &mut EfficiencyController, demand: f64) -> f64 {
    let mut p = model.quantize(ec.frequency_hz());
    let mut r = (demand / model.capacity(p)).min(1.0);
    for _ in 0..60 {
        p = ec.step(model, r);
        r = (demand / model.capacity(p)).min(1.0);
    }
    model.power(p.index(), r)
}

fn main() {
    let model = ServerModel::blade_a();
    let blades_per_enclosure = 4;
    let enclosures = 2;
    let n = blades_per_enclosure * enclosures;

    // Static caps: 10% off per server, 15% off per enclosure, and a
    // *deliberately tight* group budget (35% off) so the cascade binds.
    let cap_loc = 0.90 * model.max_power();
    let cap_enc = 0.85 * model.max_power() * blades_per_enclosure as f64;
    let cap_grp = 0.65 * model.max_power() * n as f64;

    let mut gm = GroupCapper::new(CapperLevel::Group, cap_grp, Box::new(ProportionalShare));
    let mut ems: Vec<GroupCapper> = (0..enclosures)
        .map(|_| GroupCapper::new(CapperLevel::Enclosure, cap_enc, Box::new(ProportionalShare)))
        .collect();
    let mut sms: Vec<ServerManager> = (0..n)
        .map(|_| ServerManager::new(&model, cap_loc, 1.0))
        .collect();
    let mut ecs: Vec<EfficiencyController> = (0..n)
        .map(|_| EfficiencyController::new(&model, 0.8, 0.75))
        .collect();

    // Enclosure 0 runs hot, enclosure 1 light.
    let demands: Vec<f64> = (0..n)
        .map(|i| if i < blades_per_enclosure { 0.85 } else { 0.25 })
        .collect();

    println!(
        "Budget cascade: GM({cap_grp:.0} W) -> 2 x EM({cap_enc:.0} W) -> 8 x SM({cap_loc:.0} W)"
    );
    println!("Enclosure 0 demand 85%, enclosure 1 demand 25%.\n");
    println!("round   enc0(W)   enc1(W)   group(W)   grant->enc0   grant->enc1");

    let mut powers: Vec<f64> = (0..n)
        .map(|i| settle(&model, &mut ecs[i], demands[i]))
        .collect();
    let mut settled_groups = Vec::new();
    for round in 0..16 {
        // GM epoch: split the group budget across enclosures by
        // consumption.
        let enc_power: Vec<f64> = (0..enclosures)
            .map(|e| {
                powers[e * blades_per_enclosure..(e + 1) * blades_per_enclosure]
                    .iter()
                    .sum()
            })
            .collect();
        let grants = gm.reallocate(&enc_power, &vec![cap_enc; enclosures]);
        for (e, em) in ems.iter_mut().enumerate() {
            em.set_granted_cap(grants[e]);
        }
        // EM epochs: split each enclosure's effective budget across
        // blades.
        for (e, em) in ems.iter_mut().enumerate() {
            let lo = e * blades_per_enclosure;
            let hi = lo + blades_per_enclosure;
            let blade_grants = em.reallocate(&powers[lo..hi], &vec![cap_loc; blades_per_enclosure]);
            for (k, sm) in sms[lo..hi].iter_mut().enumerate() {
                sm.set_granted_cap(blade_grants[k]);
            }
        }
        // SM epochs: enforce min(static, granted) through the EC's r_ref.
        for i in 0..n {
            let pow = powers[i];
            sms[i].step_coordinated(pow, &mut ecs[i]);
            powers[i] = settle(&model, &mut ecs[i], demands[i]);
        }
        let group: f64 = powers.iter().sum();
        if round >= 8 {
            settled_groups.push(group);
        }
        if round < 8 {
            println!(
                "{:>5}   {:>7.1}   {:>7.1}   {:>8.1}   {:>11.1}   {:>11.1}",
                round, enc_power[0], enc_power[1], group, grants[0], grants[1]
            );
        }
    }

    // Quantized P-states make the loop limit-cycle around the budget;
    // the thermal contract is on the *average* power.
    let avg_group: f64 = settled_groups.iter().sum::<f64>() / settled_groups.len() as f64;
    println!(
        "\nSettled average group power {avg_group:.1} W vs budget {cap_grp:.0} W — \
         the hot enclosure was granted\nthe larger share (proportional-share \
         policy) and throttled down to it; the light\nenclosure was left alone."
    );
    assert!(avg_group <= cap_grp * 1.02);
}

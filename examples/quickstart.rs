//! Quickstart: run the paper's headline comparison — the coordinated
//! architecture versus an uncoordinated deployment of the same five
//! controllers — on Blade A with the full 180-workload enterprise mix.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use no_power_struggles::prelude::*;

fn main() {
    println!("No \"Power\" Struggles — quickstart");
    println!("===================================");
    println!();
    println!("Simulating 180 enterprise workloads on a 180-server cluster");
    println!("(six 20-blade enclosures + 60 standalone servers), budgets");
    println!("20-15-10 off group/enclosure/server maxima.\n");

    let mut table = Table::new(vec![
        "architecture",
        "pwr save %",
        "perf loss %",
        "viol GM %",
        "viol EM %",
        "viol SM %",
        "P-state races",
    ]);

    for mode in [
        CoordinationMode::Coordinated,
        CoordinationMode::Uncoordinated,
    ] {
        let cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
            .horizon(4_000)
            .build();
        let result = run_experiment(&cfg);
        let c = &result.comparison;
        table.row(vec![
            mode.label().to_string(),
            Table::fmt(c.power_savings_pct),
            Table::fmt(c.perf_loss_pct),
            Table::fmt(c.violations_gm_pct),
            Table::fmt(c.violations_em_pct),
            Table::fmt(c.violations_sm_pct),
            c.run.pstate_conflicts.to_string(),
        ]);
    }

    println!("{table}");
    println!(
        "The coordinated architecture keeps budget violations and actuator\n\
         races near zero; the uncoordinated deployment lets the efficiency\n\
         controller and the server manager fight over the P-state register\n\
         (the \"power struggle\"), violating thermal budgets."
    );
}

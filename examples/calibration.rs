//! The paper's model-calibration procedure (§4.1): drive "the actual
//! hardware" across P-states and utilization levels, measure power and
//! performance, and least-squares-fit the linear models of Figure 5.
//!
//! Here a noisy synthetic hardware oracle stands in for the lab machine;
//! the fitted coefficients are compared against the ground truth.
//!
//! ```sh
//! cargo run --release --example calibration
//! ```

use no_power_struggles::models::calibrate::{calibrate, sweep_samples, SyntheticHardware};
use no_power_struggles::prelude::*;

fn main() {
    println!("Power/performance model calibration (paper Figure 5)");
    println!("=====================================================\n");

    for truth in [ServerModel::blade_a(), ServerModel::server_b()] {
        // A deterministic pseudo-random measurement-noise source (±3%).
        let mut state = 0.6_f64;
        let rng = move || {
            state = (state * 9301.0 + 49297.0) % 233280.0;
            (state / 233280.0) * 2.0 - 1.0
        };
        let mut hw = SyntheticHardware::new(truth.clone(), 0.03, rng);

        let fitted = calibrate(&mut hw, format!("{} (fitted)", truth.name()), 21)
            .expect("calibration sweep succeeds");

        println!("{} — fitted vs true coefficients:", truth.name());
        let mut table = Table::new(vec![
            "P-state",
            "freq (MHz)",
            "c_p fit",
            "c_p true",
            "d_p fit",
            "d_p true",
            "a_p fit",
        ]);
        for (i, (f, t)) in fitted.states().iter().zip(truth.states()).enumerate() {
            table.row(vec![
                format!("P{i}"),
                format!("{:.0}", f.frequency_hz / 1e6),
                Table::fmt(f.power.slope),
                Table::fmt(t.power.slope),
                Table::fmt(f.power.idle),
                Table::fmt(t.power.idle),
                format!("{:.3}", f.perf.scale),
            ]);
        }
        println!("{table}");

        // Emit a small utilization sweep like the Figure 5 plots.
        let samples = sweep_samples(&mut hw, 5);
        println!("raw sweep (first P-state):");
        for s in samples.iter().filter(|s| s.pstate.index() == 0) {
            println!(
                "  util {:>4.0}% -> {:>6.1} W, perf {:.2}",
                s.utilization * 100.0,
                s.watts,
                s.perf
            );
        }
        println!();
    }
}

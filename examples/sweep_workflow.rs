//! The paper-scale evaluation workflow in miniature: build a grid of
//! configurations ("more than 800 individual configurations", §5.1),
//! fan them out over worker threads, persist the results as JSON, reload
//! them, and print a pivot table.
//!
//! ```sh
//! cargo run --release --example sweep_workflow
//! ```

use no_power_struggles::core::{load_results, run_sweep, save_results};
use no_power_struggles::prelude::*;

fn main() {
    println!("Parallel sweep workflow");
    println!("=======================\n");

    // A 2×2×3 grid: system × architecture × budgets.
    let mut configs = Vec::new();
    for sys in SystemKind::BOTH {
        for mode in [
            CoordinationMode::Coordinated,
            CoordinationMode::Uncoordinated,
        ] {
            for budgets in BudgetSpec::FIGURE10 {
                configs.push(
                    Scenario::paper(sys, Mix::H60, mode)
                        .budgets(budgets)
                        .horizon(2_000)
                        .build(),
                );
            }
        }
    }
    println!("running {} configurations in parallel…", configs.len());
    let started = std::time::Instant::now();
    // Each slot is a `Result`: a panicking configuration would surface as
    // a labeled `SweepError` instead of killing the sweep. This grid is
    // known-good, so unwrap every slot.
    let results: Vec<ExperimentResult> = run_sweep(&configs, 0)
        .into_iter()
        .map(|r| r.expect("paper-standard configs run clean"))
        .collect();
    println!("done in {:.1}s\n", started.elapsed().as_secs_f64());

    // Persist + reload (the paper's archived-results workflow).
    let mut path = std::env::temp_dir();
    path.push("nps-sweep-example.json");
    save_results(&results, &path).expect("write results");
    let reloaded = load_results(&path).expect("read results");
    assert_eq!(results, reloaded);
    println!("results archived to {} and verified.\n", path.display());
    std::fs::remove_file(&path).ok();

    // Pivot: savings by (system, mode) across budgets.
    let mut table = Table::new(vec![
        "system",
        "architecture",
        "20-15-10",
        "25-20-15",
        "30-25-20",
    ]);
    for chunk in results.chunks(3) {
        let first = &chunk[0];
        let name_parts: Vec<&str> = first.label.splitn(2, '/').collect();
        table.row(vec![
            name_parts[0].to_string(),
            if first.label.contains("Uncoordinated") {
                "Uncoordinated".to_string()
            } else {
                "Coordinated".to_string()
            },
            Table::fmt(chunk[0].comparison.power_savings_pct),
            Table::fmt(chunk[1].comparison.power_savings_pct),
            Table::fmt(chunk[2].comparison.power_savings_pct),
        ]);
    }
    println!("power savings % by budget configuration:");
    println!("{table}");
}

//! A miniature of the paper's §5 sensitivity analysis: sweep the power
//! budget specification (Figure 10) and the EM/GM budget-division policy
//! (§5.4) for the coordinated architecture.
//!
//! ```sh
//! cargo run --release --example sensitivity_sweep
//! ```

use no_power_struggles::prelude::*;

fn main() {
    println!("Sensitivity sweep: budgets (Figure 10) and policies (§5.4)");
    println!("===========================================================\n");

    // --- Budget sweep ---------------------------------------------------
    let mut budget_table = Table::new(vec![
        "budgets (G-E-L)",
        "pwr save %",
        "perf loss %",
        "viol SM %",
    ]);
    for budgets in BudgetSpec::FIGURE10 {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .budgets(budgets)
        .horizon(3_000)
        .build();
        let r = run_experiment(&cfg);
        budget_table.row(vec![
            budgets.label(),
            Table::fmt(r.comparison.power_savings_pct),
            Table::fmt(r.comparison.perf_loss_pct),
            Table::fmt(r.comparison.violations_sm_pct),
        ]);
    }
    println!("Blade A / 180, coordinated, tightening budgets:");
    println!("{budget_table}");
    println!(
        "Tighter budgets trade average-power savings for peak-power\n\
         guarantees: the VMC consolidates more conservatively (paper §5.3).\n"
    );

    // --- Policy sweep ---------------------------------------------------
    let mut policy_table = Table::new(vec!["policy", "pwr save %", "perf loss %", "viol SM %"]);
    for policy in PolicyKind::ALL {
        let cfg = Scenario::paper(
            SystemKind::BladeA,
            Mix::All180,
            CoordinationMode::Coordinated,
        )
        .policy(policy)
        .horizon(3_000)
        .build();
        let r = run_experiment(&cfg);
        policy_table.row(vec![
            policy.name().to_string(),
            Table::fmt(r.comparison.power_savings_pct),
            Table::fmt(r.comparison.perf_loss_pct),
            Table::fmt(r.comparison.violations_sm_pct),
        ]);
    }
    println!("EM/GM budget-division policy (same configuration):");
    println!("{policy_table}");
    println!(
        "Demand-following policies (proportional, history, fifo, random)\n\
         reproduce the paper's §5.4 robustness finding. The demand-\n\
         OBLIVIOUS policies (fair, priority) deviate once consolidation\n\
         makes enclosure budgets bind: hot blades get starved to the\n\
         average share and throttle, trading performance for extra power\n\
         reduction — see EXPERIMENTS.md for discussion."
    );
}

//! The paper's §5.1 lab prototype, reproduced in simulation: *"we
//! implemented a simple prototype implementation of an uncoordinated
//! deployment of the EC and SM on a server in our lab, and even with one
//! machine, over sustained high loads, the uncoordinated solution went
//! into thermal failover."*
//!
//! One server, sustained ~full load, EC + SM only, RC thermal model. In
//! the uncoordinated deployment the EC overwrites the SM's throttling
//! every tick, power stays pinned above the thermal budget, and the
//! server cooks. The coordinated deployment routes the SM through the
//! EC's `r_ref` and settles safely below the budget.
//!
//! ```sh
//! cargo run --release --example thermal_failover
//! ```

use no_power_struggles::core::ExperimentConfig;
use no_power_struggles::prelude::*;

fn single_server_config(mode: CoordinationMode) -> ExperimentConfig {
    let model = ServerModel::blade_a();
    let cap = 0.9 * model.max_power();
    let thermal = ThermalConfig::for_budget(model.max_power(), cap);
    let horizon = 3_000;
    let trace = UtilTrace::constant("sustained-high-load", 0.98, horizon as usize)
        .expect("valid constant trace");
    let mut cfg = Scenario::paper(SystemKind::BladeA, Mix::All180, mode)
        .horizon(horizon)
        .build();
    // Swap the paper cluster for a single standalone server under
    // sustained load, EC + SM only, with thermal tracking on.
    cfg.label = format!("single server / {}", mode.label());
    cfg.topology = Topology::builder().standalone(1).build();
    cfg.traces = vec![trace];
    cfg.mask = ControllerMask {
        ec: true,
        sm: true,
        em: false,
        gm: false,
        vmc: false,
    };
    cfg.sim = cfg.sim.with_thermal(thermal);
    cfg
}

fn main() {
    println!("Thermal failover under sustained load (paper §5.1 prototype)");
    println!("=============================================================\n");
    let model = ServerModel::blade_a();
    let cap = 0.9 * model.max_power();
    let thermal = ThermalConfig::for_budget(model.max_power(), cap);
    println!(
        "Server: {} | thermal budget {:.0} W | critical {:.0} °C | \
         equilibrium at budget {:.1} °C, at max power {:.1} °C\n",
        model.name(),
        cap,
        thermal.critical_c,
        thermal.equilibrium_c(cap),
        thermal.equilibrium_c(model.max_power()),
    );

    for mode in [
        CoordinationMode::Uncoordinated,
        CoordinationMode::Coordinated,
    ] {
        let cfg = single_server_config(mode);
        let mut runner = Runner::new(&cfg);
        println!("--- {} ---", mode.label());
        println!("tick   P-state   power(W)   temp(°C)   r_ref");
        let server = ServerId(0);
        let mut failed_at: Option<u64> = None;
        for t in 0..3_000u64 {
            runner.tick();
            if t % 300 == 0 {
                println!(
                    "{:>5}   {:>7}   {:>8.1}   {:>8.1}   {:>5.2}",
                    t,
                    runner.sim().pstate(server).to_string(),
                    runner.sim().server_power(server),
                    runner.sim().temperature_c(server),
                    runner.ec_r_ref(server),
                );
            }
            if failed_at.is_none() && runner.sim().failover_events() > 0 {
                failed_at = Some(t);
            }
        }
        match failed_at {
            Some(t) => println!("=> THERMAL FAILOVER at tick {t}\n"),
            None => println!(
                "=> no failover; settled at {:.1} °C\n",
                runner.sim().temperature_c(server)
            ),
        }
    }
}

//! Watch the VM controller consolidate a diurnal data center: every VMC
//! epoch the cluster is re-packed to the live demand estimate, servers
//! power off at night and power back on as load returns.
//!
//! ```sh
//! cargo run --release --example consolidation
//! ```

use no_power_struggles::prelude::*;

fn main() {
    println!("VM consolidation over a diurnal cycle (Server B, 180 workloads)");
    println!("================================================================\n");

    let cfg = Scenario::paper(
        SystemKind::ServerB,
        Mix::All180,
        CoordinationMode::Coordinated,
    )
    .horizon(6_000)
    .build();
    let mut runner = Runner::new(&cfg);
    // Record controller decisions (migrations, power cycling, VMC plans)
    // in a bounded ring; the per-type counters stay exact past the bound.
    runner.enable_ring_telemetry(4_096);

    println!("tick    servers-on    group-kW    migrations    VMC buffers (loc/enc/grp)");
    let n = runner.sim().topology().num_servers();
    for t in 0..6_000u64 {
        runner.tick();
        if (t + 1) % 500 == 0 {
            let on = (0..n).filter(|&i| runner.sim().is_on(ServerId(i))).count();
            let (bl, be, bg) = runner.vmc_buffers();
            println!(
                "{:>5}   {:>10}   {:>9.1}   {:>10}   {:.2}/{:.2}/{:.2}",
                t + 1,
                on,
                runner.sim().group_power() / 1_000.0,
                runner.sim().migrations_started(),
                bl,
                be,
                bg,
            );
        }
    }

    let stats = runner.stats();
    println!(
        "\nmean group power {:.1} kW | delivered {:.1}% of demanded work | \
         {} migrations total",
        stats.mean_power() / 1_000.0,
        100.0 * stats.delivery_ratio(),
        stats.migrations,
    );
    if let Some(ring) = runner.ring_telemetry() {
        println!("\n{}", ring.summary());
    }
    println!(
        "Server B's high idle power (~70% of peak) is why the paper finds\n\
         consolidation — not DVFS — to be the dominant saver on such systems."
    );
}
